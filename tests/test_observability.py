"""Tests for the structured tracing + metrics subsystem (``repro.obs``).

Covers the metrics registry, the recorder's virtual-time clock, the three
exporters (Chrome trace / JSONL / Prometheus), trace validation, the
zero-overhead guarantee when observation is disabled, and the reconciliation
of span counts against ``RunStats`` — the paper's Table 2/3 numbers must be
derivable from the trace alone.
"""

import json

import pytest

from repro.config import EngineConfig
from repro.engine import RPQdEngine
from repro.errors import SanitizerViolation
from repro.graph.generators import chain_graph, random_graph
from repro.obs import (
    MetricsRegistry,
    Recorder,
    jsonl_lines,
    load_trace_file,
    summarize_trace,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)

CYCLIC_UNBOUNDED = "SELECT COUNT(*) FROM MATCH (a)-/:LINK+/->(b)"


@pytest.fixture(scope="module")
def observed_run():
    """One observed execution of a cyclic unbounded RPQ (worst-case shape:
    revisits, eliminations, duplicates, deep depth mix)."""
    graph = random_graph(60, 200, seed=3)
    engine = RPQdEngine(graph, EngineConfig(num_machines=4))
    result = engine.execute(CYCLIC_UNBOUNDED, observe=True)
    return result


class TestMetricsRegistry:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "hits", ("kind",))
        c.labels("a").inc()
        c.labels("a").inc(2)
        c.labels("b").inc()
        assert c.labels("a").value == 3
        assert c.labels("b").value == 1

    def test_gauge_set_and_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("occupancy", "buffers", ("m",))
        g.labels(0).set(5)
        g.labels(0).dec()
        assert g.labels(0).value == 4

    def test_histogram_summary_and_quantile(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes", "batch sizes", ())
        for v in [1, 2, 4, 8, 100]:
            h.labels().observe(v)
        s = h.labels().summary()
        assert s["count"] == 5
        assert s["sum"] == 115
        assert s["max"] == 100
        assert h.labels().quantile(0.5) <= h.labels().quantile(0.99)

    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "x", ("l",))
        b = reg.counter("x_total", "x", ("l",))
        assert a is b

    def test_registration_shape_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "x", ("l",))
        with pytest.raises(ValueError):
            reg.counter("x_total", "x", ("l", "m"))
        with pytest.raises(ValueError):
            reg.gauge("x_total", "x", ("l",))

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter", ("k",)).labels("v").inc(7)
        reg.histogram("h", "a histogram", ()).labels().observe(3)
        text = reg.prometheus_text()
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{k="v"} 7' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_count 1" in text
        assert "h_sum 3" in text

    def test_prometheus_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("e_total", "esc", ("k",)).labels('a"b\\c').inc()
        text = reg.prometheus_text()
        assert 'k="a\\"b\\\\c"' in text


class TestRecorderClock:
    def test_virtual_time_from_rounds(self):
        rec = Recorder()
        rec.configure(num_machines=2, quantum=100.0)
        rec.begin_round(1)
        rec.advance(0, 30.0)
        assert rec.now(0) == 30.0
        rec.begin_round(3)  # round r starts at (r-1) * quantum
        assert rec.now(0) == 200.0

    def test_timestamps_monotone_per_track(self):
        rec = Recorder()
        rec.configure(num_machines=1, quantum=10.0)
        rec.begin_round(2)
        rec.instant(0, "late", {})
        rec.begin_round(1)  # clock regresses; emitted ts must not
        rec.instant(0, "early", {})
        ts = [e["ts"] for e in rec.events]
        assert ts == sorted(ts)

    def test_span_stack_closes_in_order(self):
        rec = Recorder()
        rec.configure(num_machines=1, quantum=10.0)
        rec.begin_round(1)
        rec.begin_span(0, 1, "outer", {})
        rec.advance(0, 2.0)
        rec.begin_span(0, 1, "inner", {})
        rec.advance(0, 2.0)
        rec.end_span(0, 1)
        rec.end_span(0, 1)
        phases = [(e["ph"], e["name"]) for e in rec.events]
        assert phases == [
            ("B", "outer"), ("B", "inner"), ("E", "inner"), ("E", "outer"),
        ]

    def test_finish_closes_dangling_spans(self):
        rec = Recorder()
        rec.configure(num_machines=1, quantum=10.0)
        rec.begin_round(1)
        rec.begin_span(0, 1, "open", {})
        rec.finish()
        assert validate_chrome_trace({"traceEvents": list(rec.events)}) == []

    def test_counter_events_deduplicate(self):
        rec = Recorder()
        rec.configure(num_machines=1, quantum=10.0)
        rec.begin_round(1)
        rec.counter(0, "inflight", 3)
        rec.counter(0, "inflight", 3)  # unchanged -> no event
        rec.counter(0, "inflight", 4)
        assert sum(1 for e in rec.events if e["ph"] == "C") == 2


class TestTraceExportRoundTrip:
    """Satellite: cyclic unbounded-RPQ trace round-trip + reconciliation."""

    def test_chrome_trace_validates(self, observed_run):
        trace = to_chrome_trace(observed_run.obs, workers_per_machine=2)
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["dropped_events"] == 0

    def test_span_counts_reconcile_with_stats(self, observed_run):
        """Per-depth rpq.control events must equal depth_table() exactly,
        and batch.send instants must equal stats.batches_sent."""
        rec = observed_run.obs
        stats = observed_run.stats
        by_depth = {}
        sends = 0
        for event in rec.events:
            if event["name"] == "rpq.control":
                args = event["args"]
                row = by_depth.setdefault(
                    args["depth"], {"total": 0, "eliminated": 0, "duplicated": 0}
                )
                row["total"] += 1
                if args["outcome"] in ("eliminated", "duplicated"):
                    row[args["outcome"]] += 1
            elif event["name"] == "batch.send":
                sends += 1
        assert sends == stats.batches_sent
        table = stats.depth_table(rpq_id=0)
        assert table, "cyclic query must produce control matches"
        assert len(by_depth) == len(table)
        for depth, matches, eliminated, duplicated in table:
            row = by_depth[depth]
            assert row["total"] == matches
            assert row["eliminated"] == eliminated
            assert row["duplicated"] == duplicated

    def test_dft_batch_spans_match_batches_sent(self, observed_run):
        rec = observed_run.obs
        begins = sum(
            1 for e in rec.events
            if e["ph"] == "B" and e["name"] == "dft.batch"
        )
        assert begins == observed_run.stats.batches_sent

    def test_flow_arrows_bind(self, observed_run):
        """Every received batch's flow-finish refers to a started flow."""
        rec = observed_run.obs
        starts = {e["id"] for e in rec.events if e["ph"] == "s"}
        finishes = [e for e in rec.events if e["ph"] == "f"]
        assert finishes, "expected cross-machine flow arrows"
        assert all(e["id"] in starts for e in finishes)

    def test_jsonl_round_trip(self, observed_run, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(observed_run.obs, path)
        loaded = load_trace_file(str(path))
        assert len(loaded["traceEvents"]) == len(observed_run.obs.events)
        assert loaded["metrics"]  # final metrics record survives the trip
        assert validate_chrome_trace(loaded) == []

    def test_chrome_file_round_trip(self, observed_run, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(observed_run.obs, path, workers_per_machine=2)
        loaded = load_trace_file(str(path))
        assert validate_chrome_trace(loaded) == []
        digest = summarize_trace(loaded)
        assert "validation: ok" in digest
        assert "rpq.control" in digest

    def test_every_jsonl_line_parses(self, observed_run):
        kinds = set()
        for line in jsonl_lines(observed_run.obs):
            kinds.add(json.loads(line)["type"])
        assert kinds == {"meta", "event", "metrics"}

    def test_prometheus_export(self, observed_run, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(observed_run.obs, path)
        text = path.read_text()
        assert "repro_batches_sent_total" in text
        assert "repro_control_entries_total" in text
        assert "repro_flow_wait_rounds_bucket" in text

    def test_metrics_agree_with_stats(self, observed_run):
        reg = observed_run.obs.metrics
        counter = reg.counter(
            "repro_batches_sent_total",
            "batches shipped to other machines",
            ("machine", "stage"),
        )
        sent = sum(child.value for child in counter._children.values())
        assert sent == observed_run.stats.batches_sent


class TestZeroOverhead:
    def test_virtual_time_unchanged_by_observation(self):
        graph = random_graph(40, 130, seed=5)
        engine = RPQdEngine(graph, EngineConfig(num_machines=3))
        plain = engine.execute(CYCLIC_UNBOUNDED)
        observed = engine.execute(CYCLIC_UNBOUNDED, observe=True)
        assert plain.virtual_time == observed.virtual_time
        assert plain.scalar() == observed.scalar()
        assert plain.stats.batches_sent == observed.stats.batches_sent
        assert plain.obs is None
        assert observed.obs is not None

    def test_observe_config_flag(self):
        graph = chain_graph(12)
        engine = RPQdEngine(
            graph, EngineConfig(num_machines=2, observe=True)
        )
        result = engine.execute(
            "SELECT COUNT(*) FROM MATCH (a)-/:NEXT{1,3}/->(b)"
        )
        assert result.obs is not None
        assert result.obs.events

    def test_caller_supplied_recorder(self):
        graph = chain_graph(10)
        engine = RPQdEngine(graph, EngineConfig(num_machines=2))
        rec = Recorder()
        result = engine.execute(
            "SELECT COUNT(*) FROM MATCH (a)-/:NEXT{1,2}/->(b)", observe=rec
        )
        assert result.obs is rec


class TestMultiSegmentDepthTable:
    """Satellite: ``RunStats._merge_depth_counters`` for 2-segment queries
    where each rpq_id's work lands on a subset of machines."""

    QUERY = (
        "SELECT COUNT(*) FROM MATCH "
        "(a)-/:NEXT{1,2}/->(b)-/:NEXT{1,2}/->(c)"
    )

    def test_two_segment_depth_tables_pinned(self):
        graph = chain_graph(16)
        engine = RPQdEngine(graph, EngineConfig(num_machines=4))
        stats = engine.execute(self.QUERY).stats
        assert sorted(stats.control_matches) == [0, 1]
        # Segment 0 inits from all 16 vertices (depth 0), then a chain of 16
        # has 16 - d paths of length d: 15 at depth 1, 14 at depth 2.
        assert stats.depth_table(rpq_id=0) == [
            (0, 16, 0, 0), (1, 15, 0, 0), (2, 14, 0, 0),
        ]
        # Segment 1 inits once per (a, b) binding from segment 0 — 15 one-hop
        # plus 14 two-hop = 29 — and each advances while NEXT edges remain.
        assert stats.depth_table(rpq_id=1) == [
            (0, 29, 0, 0), (1, 27, 0, 0), (2, 25, 0, 0),
        ]

    def test_merge_handles_rpq_on_subset_of_machines(self):
        """An rpq_id recorded on only some machines must still merge: a
        regression guard against sharing one Counter across machines."""
        from repro.runtime.stats import MachineStats

        a = MachineStats()
        b = MachineStats()
        c = MachineStats()
        a.record_control_match(0, 1)
        a.record_control_match(1, 1)  # rpq 1 appears on machine 0 only
        b.record_control_match(0, 1)
        b.record_control_match(0, 2)
        # machine 2 never saw rpq 0 or 1
        from repro.runtime.stats import RunStats

        stats = RunStats([a, b, c], rounds=1, wall_seconds=0.0,
                         config=EngineConfig(num_machines=3))
        assert stats.control_matches[0] == {1: 2, 2: 1}
        assert stats.control_matches[1] == {1: 1}
        assert stats.depth_table(rpq_id=1) == [(1, 1, 0, 0)]
        # Merging must not mutate the per-machine counters.
        assert a.control_matches[0] == {1: 1}
        assert b.control_matches[0] == {1: 1, 2: 1}

    def test_observed_two_segment_trace_reconciles(self):
        graph = chain_graph(16)
        engine = RPQdEngine(graph, EngineConfig(num_machines=4))
        result = engine.execute(self.QUERY, observe=True)
        per_rpq = {}
        for event in result.obs.events:
            if event["name"] == "rpq.control":
                args = event["args"]
                per_rpq.setdefault(args["rpq"], {}).setdefault(args["depth"], 0)
                per_rpq[args["rpq"]][args["depth"]] += 1
        for rpq_id in (0, 1):
            table = result.stats.depth_table(rpq_id=rpq_id)
            assert {d: m for d, m, _e, _dup in table} == per_rpq[rpq_id]


class TestSanitizerOnEventBus:
    def test_violation_recorded_before_raise(self):
        from repro.analysis.sanitizer import RuntimeSanitizer

        rec = Recorder()
        rec.configure(num_machines=2, quantum=10.0)
        rec.begin_round(1)
        san = RuntimeSanitizer(obs=rec)
        with pytest.raises(SanitizerViolation):
            san._fail("test invariant", "synthetic")
        events = [e for e in rec.events if e["name"] == "sanitizer.violation"]
        assert len(events) == 1
        assert events[0]["args"]["invariant"] == "test invariant"
        counter = rec.metrics.counter(
            "repro_sanitizer_violations_total", "", ("invariant",)
        )
        assert counter.labels("test invariant").value == 1

    def test_sanitized_observed_run_is_clean(self):
        graph = chain_graph(12)
        engine = RPQdEngine(
            graph, EngineConfig(num_machines=2, sanitize=True)
        )
        result = engine.execute(
            "SELECT COUNT(*) FROM MATCH (a)-/:NEXT{1,4}/->(b)", observe=True
        )
        names = {e["name"] for e in result.obs.events}
        assert "sanitizer.violation" not in names
        assert "query.end" in names


class TestBenchHarnessRecorder:
    def test_metric_summaries_attached(self):
        from repro.bench.harness import BenchHarness, rpqd_executor

        graph = chain_graph(14)
        cells = BenchHarness(repetitions=1).run(
            {"rpqd": rpqd_executor(graph, 2, observe=True)},
            {"q": "SELECT COUNT(*) FROM MATCH (a)-/:NEXT{1,3}/->(b)"},
        )
        cell = cells[("rpqd", "q")]
        assert cell.metric_summaries
        assert "repro_control_entries_total" in cell.metric_summaries

    def test_unobserved_executor_attaches_nothing(self):
        from repro.bench.harness import BenchHarness, rpqd_executor

        graph = chain_graph(14)
        cells = BenchHarness(repetitions=1).run(
            {"rpqd": rpqd_executor(graph, 2)},
            {"q": "SELECT COUNT(*) FROM MATCH (a)-/:NEXT{1,3}/->(b)"},
        )
        assert cells[("rpqd", "q")].metric_summaries == {}


class TestObservabilityCli:
    @pytest.fixture
    def graph_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "g.jsonl"
        assert main(["generate", str(path), "--scale", "xs", "--seed", "3"]) == 0
        capsys.readouterr()
        return path

    def test_query_trace_and_metrics_out(self, graph_file, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.prom"
        rc = main([
            "query", str(graph_file),
            "SELECT COUNT(*) FROM MATCH (a:Person)-/:KNOWS{1,2}/->(b:Person)",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "trace written" in captured.err
        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []
        assert "repro_batches_sent_total" in metrics_path.read_text()

    def test_query_jsonl_extension_selects_jsonl(self, graph_file, tmp_path,
                                                 capsys):
        from repro.cli import main

        trace_path = tmp_path / "t.jsonl"
        rc = main([
            "query", str(graph_file),
            "SELECT COUNT(*) FROM MATCH (a:Person)-[:KNOWS]->(b:Person)",
            "--trace-out", str(trace_path),
        ])
        assert rc == 0
        capsys.readouterr()
        first = json.loads(trace_path.read_text().splitlines()[0])
        assert first["type"] == "meta"

    def test_query_timeline(self, graph_file, capsys):
        from repro.cli import main

        rc = main([
            "query", str(graph_file),
            "SELECT COUNT(*) FROM MATCH (a:Person)-[:KNOWS]->(b:Person)",
            "--timeline",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "utilization:" in err

    def test_observe_requires_rpqd(self, graph_file, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "query", str(graph_file),
            "SELECT COUNT(*) FROM MATCH (a:Person)",
            "--engine", "bft", "--trace-out", str(tmp_path / "t.json"),
        ])
        assert rc == 2
        assert "require --engine rpqd" in capsys.readouterr().err

    def test_trace_subcommand(self, graph_file, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "t.json"
        main([
            "query", str(graph_file),
            "SELECT COUNT(*) FROM MATCH (a:Person)-/:KNOWS{1,2}/->(b:Person)",
            "--trace-out", str(trace_path),
        ])
        capsys.readouterr()
        rc = main(["trace", str(trace_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "validation: ok" in out
        assert "events on" in out

    def test_trace_subcommand_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["trace", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_workload_json(self, capsys):
        from repro.cli import main

        rc = main(["workload", "--scale", "xs", "--machines", "2", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engines"] == ["rpqd", "bft", "recursive"]
        assert len(payload["results"]) >= 9
        assert all("rpqd" in row for row in payload["results"])

    def test_workload_timeline(self, capsys):
        from repro.cli import main

        rc = main([
            "workload", "--scale", "xs", "--machines", "2", "--timeline",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "timeline (rpqd, 2 machines):" in out
        assert "utilization:" in out
