"""Unit tests for rpid encoding, the reachability index, and the controller."""

import pytest

from repro.rpq import (
    IndexOutcome,
    MAX_SEQ,
    ReachabilityIndex,
    RpidAllocator,
    RpqController,
    make_source_path_id,
    unpack_source_path_id,
)
from repro.rpq.control import ACTION_EXIT, ACTION_PATH
from repro.plan.stages import RpqSpec
from repro.runtime.stats import MachineStats
from repro.runtime.termination import TerminationTracker


class TestRpid:
    def test_round_trip(self):
        spid = make_source_path_id(3, 7, 123456)
        assert unpack_source_path_id(spid) == (3, 7, 123456)

    def test_max_values_round_trip(self):
        spid = make_source_path_id(255, 255, MAX_SEQ - 1)
        assert unpack_source_path_id(spid) == (255, 255, MAX_SEQ - 1)

    def test_uniqueness_across_workers(self):
        a = RpidAllocator(0, 0)
        b = RpidAllocator(0, 1)
        c = RpidAllocator(1, 0)
        ids = {a.allocate(), a.allocate(), b.allocate(), c.allocate()}
        assert len(ids) == 4

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_source_path_id(256, 0, 0)
        with pytest.raises(ValueError):
            make_source_path_id(0, 256, 0)
        with pytest.raises(ValueError):
            make_source_path_id(0, 0, MAX_SEQ)


class TestReachabilityIndex:
    def test_first_visit_inserts(self):
        idx = ReachabilityIndex(0, 0)
        assert idx.check_and_update(11, 5, 2) is IndexOutcome.INSERTED
        assert idx.entries == 1
        assert idx.depth_of(11, 5) == 2

    def test_deeper_revisit_eliminated(self):
        idx = ReachabilityIndex(0, 0)
        idx.check_and_update(11, 5, 2)
        assert idx.check_and_update(11, 5, 3) is IndexOutcome.ELIMINATED
        assert idx.check_and_update(11, 5, 2) is IndexOutcome.ELIMINATED
        assert idx.depth_of(11, 5) == 2

    def test_shallower_revisit_duplicated_updates_depth(self):
        idx = ReachabilityIndex(0, 0)
        idx.check_and_update(11, 5, 3)
        assert idx.check_and_update(11, 5, 1) is IndexOutcome.DUPLICATED
        assert idx.depth_of(11, 5) == 1
        assert idx.updates == 1

    def test_sources_are_independent(self):
        idx = ReachabilityIndex(0, 0)
        idx.check_and_update(11, 5, 2)
        assert idx.check_and_update(22, 5, 9) is IndexOutcome.INSERTED
        assert idx.entries == 2

    def test_modelled_bytes(self):
        idx = ReachabilityIndex(0, 0)
        for i in range(10):
            idx.check_and_update(1, i, 0)
        assert idx.modelled_bytes == 120  # 12 bytes/entry, paper Section 4.4


class _Frame:
    def __init__(self, vertex):
        self.vertex = vertex
        self.undo = []


def make_controller(min_hops, max_hops, use_index=True):
    spec = RpqSpec(
        rpq_id=0,
        min_hops=min_hops,
        max_hops=max_hops,
        path_entry=2,
        exit_stage=4,
        path_stages=(2, 3),
        depth_slot=0,
        rpid_slot=1,
        accumulator_inits=((2, "max"),),
    )
    stats = MachineStats()
    tracker = TerminationTracker(0)
    index = ReachabilityIndex(0, 0)
    controller = RpqController(spec, index, stats, tracker, use_index=use_index)
    return controller, stats, tracker, index


class TestController:
    def test_init_entry_sets_depth_rpid_and_resets_accumulators(self):
        controller, stats, tracker, _ = make_controller(1, None)
        ctx = [99, None, 42]
        frame = _Frame(vertex=7)
        actions, _cost = controller.on_entry(frame, ctx, "init", RpidAllocator(0, 0))
        assert ctx[0] == 0  # depth
        assert ctx[1] is not None  # rpid allocated
        assert ctx[2] is None  # accumulator reset
        assert actions == [ACTION_PATH]  # depth 0 < min 1: path only
        assert stats.control_matches[0][0] == 1
        assert tracker.max_depths[0] == 0
        # Undo restores the pre-entry view.
        for slot, old in reversed(frame.undo):
            ctx[slot] = old
        assert ctx == [99, None, 42]

    def test_advance_increments_depth(self):
        controller, stats, _, _ = make_controller(1, None)
        ctx = [0, 1234, None]
        actions, _cost = controller.on_entry(_Frame(5), ctx, "advance", RpidAllocator(0, 0))
        assert ctx[0] == 1
        assert actions == [ACTION_EXIT, ACTION_PATH]

    def test_max_hop_stops_deepening(self):
        controller, _, _, _ = make_controller(1, 2)
        ctx = [1, 77, None]
        actions, _cost = controller.on_entry(_Frame(5), ctx, "advance", RpidAllocator(0, 0))
        assert ctx[0] == 2
        assert actions == [ACTION_EXIT]  # at max: no path continuation

    def test_eliminated_backtracks(self):
        controller, stats, _, index = make_controller(1, None)
        index.check_and_update(77, 5, 1)
        ctx = [0, 77, None]
        actions, _cost = controller.on_entry(_Frame(5), ctx, "advance", RpidAllocator(0, 0))
        assert actions == []
        assert stats.eliminated[0][1] == 1

    def test_duplicated_continues_without_emitting(self):
        controller, stats, _, index = make_controller(1, 5)
        index.check_and_update(77, 5, 4)
        ctx = [0, 77, None]
        actions, _cost = controller.on_entry(_Frame(5), ctx, "advance", RpidAllocator(0, 0))
        assert actions == [ACTION_PATH]
        assert stats.duplicated[0][1] == 1

    def test_zero_hop_inserts_self_entry(self):
        # Paper Figure 3: {0,0} inserts a {v, v} entry per source vertex.
        controller, _, _, index = make_controller(0, 0)
        ctx = [None, None, None]
        actions, _cost = controller.on_entry(_Frame(9), ctx, "init", RpidAllocator(0, 0))
        assert actions == [ACTION_EXIT]
        assert index.entries == 1

    def test_no_index_mode_always_exits(self):
        controller, stats, _, index = make_controller(1, None, use_index=False)
        ctx = [0, 77, None]
        actions, _cost = controller.on_entry(_Frame(5), ctx, "advance", RpidAllocator(0, 0))
        assert actions == [ACTION_EXIT, ACTION_PATH]
        assert index.entries == 0

    def test_below_min_never_touches_index(self):
        controller, _, _, index = make_controller(3, None)
        ctx = [0, 77, None]
        controller.on_entry(_Frame(5), ctx, "advance", RpidAllocator(0, 0))
        assert index.entries == 0
