"""Tests for the engine facade, plan caching, and the bench harness."""

import pytest

from repro import EngineConfig, RPQdEngine
from repro.bench import (
    BenchHarness,
    baseline_executor,
    format_table,
    rpqd_executor,
    speedup,
    total_virtual_time,
)
from repro.baselines import BftEngine
from repro.graph.generators import chain_graph, random_graph
from repro.pgql import parse


class TestEngineFacade:
    @pytest.fixture
    def engine(self):
        return RPQdEngine(chain_graph(8), EngineConfig(num_machines=2))

    def test_plan_cache_reuses_compiled_plan(self, engine):
        q = "SELECT COUNT(*) FROM MATCH (a)-[:NEXT]->(b)"
        p1 = engine.compile(q)
        p2 = engine.compile(q)
        assert p1 is p2

    def test_execute_parsed_query_object(self, engine):
        q = parse("SELECT COUNT(*) FROM MATCH (a)-[:NEXT]->(b)")
        assert engine.execute(q).scalar() == 7

    def test_execute_precompiled_plan(self, engine):
        plan = engine.compile("SELECT COUNT(*) FROM MATCH (a)-[:NEXT]->(b)")
        assert engine.execute(plan).scalar() == 7

    def test_config_override_repartitions(self, engine):
        q = "SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)"
        default = engine.execute(q)
        override = engine.execute(q, config=EngineConfig(num_machines=5))
        assert default.scalar() == override.scalar() == 28
        assert override.stats.num_machines == 5

    def test_explain_string(self, engine):
        text = engine.explain("SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)")
        assert "rpq_control" in text

    def test_query_result_passthroughs(self, engine):
        r = engine.execute(
            "SELECT a.idx AS i FROM MATCH (a)-[:NEXT]->(b) ORDER BY i LIMIT 3"
        )
        assert len(r) == 3
        assert r.columns == ["i"]
        assert r.column("i") == [0, 1, 2]
        assert r.to_dicts()[0] == {"i": 0}
        assert list(iter(r))[0] == (0,)

    def test_index_preallocate_flag(self):
        g = chain_graph(12)
        q = "SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)"
        dynamic = RPQdEngine(g, EngineConfig(num_machines=2)).execute(q)
        prealloc = RPQdEngine(
            g, EngineConfig(num_machines=2, index_preallocate=True)
        ).execute(q)
        assert dynamic.scalar() == prealloc.scalar()
        assert prealloc.stats.index_bytes > dynamic.stats.index_bytes
        assert prealloc.stats.cost_units_total() < dynamic.stats.cost_units_total()

    def test_block_partitioner_option(self):
        g = random_graph(30, 90, seed=4)
        q = "SELECT COUNT(*) FROM MATCH (a)-/:LINK{1,2}/->(b)"
        hash_r = RPQdEngine(g, EngineConfig(num_machines=3)).execute(q)
        block_r = RPQdEngine(
            g, EngineConfig(num_machines=3), partitioner="block"
        ).execute(q)
        assert hash_r.scalar() == block_r.scalar()


class TestBenchHarness:
    def test_round_robin_medians(self):
        g = chain_graph(10)
        engines = {
            "rpqd-2": rpqd_executor(g, 2),
            "bft": baseline_executor(BftEngine, g),
        }
        queries = {"q": "SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)"}
        cells = BenchHarness(repetitions=3).run(engines, queries)
        cell = cells[("rpqd-2", "q")]
        assert len(cell.samples) == 3
        assert cell.value == (45,)
        assert cell.virtual_time > 0
        assert cells[("bft", "q")].value == (45,)

    def test_total_virtual_time(self):
        g = chain_graph(6)
        engines = {"rpqd-2": rpqd_executor(g, 2)}
        queries = {
            "q1": "SELECT COUNT(*) FROM MATCH (a)-[:NEXT]->(b)",
            "q2": "SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)",
        }
        cells = BenchHarness(repetitions=1).run(engines, queries)
        total = total_virtual_time(cells, "rpqd-2")
        assert total == sum(c.virtual_time for c in cells.values())


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["a", 1], ["long-name", 123456]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "123,456" in text
        # All data lines have equal width.
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1

    def test_format_table_floats(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.23" in text

    def test_speedup_guard(self):
        assert speedup(10, 2) == 5
        assert speedup(10, 0) == float("inf")
