"""Coverage for EXPLAIN rendering and RunStats aggregation."""

import pytest

from repro import EngineConfig, GraphBuilder, RPQdEngine
from repro.config import EngineConfig as Config
from repro.graph.generators import chain_graph, random_graph, two_label_graph
from repro.plan import explain
from repro.runtime.stats import MachineStats, RunStats


@pytest.fixture(scope="module")
def engine():
    return RPQdEngine(two_label_graph(20, seed=2), EngineConfig(num_machines=2))


class TestExplain:
    def test_mentions_every_stage_kind(self, engine):
        text = engine.explain(
            "SELECT COUNT(*) FROM MATCH (a:A)-[:X]->(b:B)-/:Y{1,2}/->(c), "
            "MATCH (b)-[:X]->(d), MATCH (a)-[:Y]->(c)"
        )
        assert "vertex" in text
        assert "rpq_control" in text
        assert "path" in text
        assert "noop" in text

    def test_mentions_every_hop_kind(self, engine):
        text = engine.explain(
            "SELECT COUNT(*) FROM MATCH (a:A)-[:X]->(b:B)-/:Y{1,2}/->(c), "
            "MATCH (b)-[:X]->(d), MATCH (a)-[:Y]->(c)"
        )
        for hop in ("neighbor", "transition", "inspect", "edge", "OUTPUT"):
            assert hop in text, hop

    def test_single_vertex_bootstrap_shown(self, engine):
        text = engine.explain("SELECT COUNT(*) FROM MATCH (a)->(b) WHERE id(a) = 3")
        assert "single vertex id=3" in text

    def test_slot_names_listed(self, engine):
        text = engine.explain("SELECT a.weight FROM MATCH (a:A)")
        assert "p:a.weight" in text
        assert "v:a" in text

    def test_filter_and_captures_flags(self, engine):
        text = engine.explain(
            "SELECT COUNT(*) FROM MATCH (a:A) WHERE a.weight > 3"
        )
        assert "filtered" in text
        assert "captures=" in text


class TestExplainAnalyze:
    def test_annotates_stage_match_counts(self):
        g = chain_graph(10)
        r = RPQdEngine(g, EngineConfig(num_machines=2)).execute(
            "SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)"
        )
        text = r.explain_analyze()
        assert "act=10]" in text  # stage 0 matches every vertex
        assert "act=45]" in text  # the exit stage: one per result
        assert "est~" in text  # planner estimates rendered beside actuals
        assert "virtual rounds" in text  # analyze footer: timing
        assert "s wall" in text

    def test_control_stage_counts_all_entries(self):
        g = chain_graph(5)
        r = RPQdEngine(g, EngineConfig(num_machines=1)).execute(
            "SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)"
        )
        control = next(s for s in r.plan.stages if s.rpq is not None)
        total_entries = sum(r.stats.control_matches[0].values())
        assert r.stats.stage_matches[control.index] == total_entries

    def test_plain_explain_has_no_annotations(self):
        g = chain_graph(5)
        engine = RPQdEngine(g, EngineConfig(num_machines=1))
        text = engine.explain("SELECT COUNT(*) FROM MATCH (a)->(b)")
        assert "act=" not in text
        assert "analyze:" not in text


class TestRunStats:
    def make(self, n=2, **overrides):
        machines = [MachineStats() for _ in range(n)]
        return machines, RunStats(machines, rounds=10, wall_seconds=0.5,
                                  config=Config(num_machines=max(2, n)), **overrides)

    def test_sums_across_machines(self):
        machines, stats = self.make()
        machines[0].outputs = 3
        machines[1].outputs = 4
        machines[0].bytes_sent = 100
        assert stats.outputs == 7
        assert stats.bytes_sent == 100

    def test_depth_counters_merge(self):
        machines, stats = self.make()
        machines[0].record_control_match(0, 1)
        machines[1].record_control_match(0, 1)
        machines[1].record_control_match(0, 2)
        machines[0].record_eliminated(0, 2)
        machines[1].record_duplicated(0, 1)
        assert stats.control_matches[0] == {1: 2, 2: 1}
        assert stats.depth_table(0) == [(1, 2, 0, 1), (2, 1, 1, 0)]
        assert stats.max_depth(0) == 2

    def test_virtual_time_prefers_quiescence(self):
        _machines, stats = self.make(quiescent_round=6)
        assert stats.virtual_time == 6
        _machines, stats2 = self.make()
        assert stats2.virtual_time == 10

    def test_memory_models(self):
        machines, stats = self.make()
        machines[0].index_entries = 10
        machines[0].index_prealloc_bytes = 80
        machines[1].peak_inflight_buffers = 3
        assert stats.index_bytes == 120 + 80
        assert stats.messaging_bytes_peak == 3 * stats.config.buffer_bytes

    def test_summary_keys(self):
        _machines, stats = self.make()
        summary = stats.summary()
        for key in ("rounds", "outputs", "flow_control_blocks", "index_bytes"):
            assert key in summary

    def test_empty_depth_table(self):
        _machines, stats = self.make()
        assert stats.depth_table(0) == []
        assert stats.max_depth(0) == -1


class TestStatsFromRealRuns:
    def test_filter_evals_counted(self):
        g = chain_graph(10)
        r = RPQdEngine(g, EngineConfig(num_machines=2)).execute(
            "SELECT COUNT(*) FROM MATCH (a)-[:NEXT]->(b) WHERE a.idx > 2"
        )
        assert r.stats._sum("filter_evals") > 0

    def test_edges_traversed_matches_structure(self):
        g = chain_graph(10)
        r = RPQdEngine(g, EngineConfig(num_machines=2)).execute(
            "SELECT COUNT(*) FROM MATCH (a)-[:NEXT]->(b)"
        )
        # A single forward hop traverses each edge exactly once.
        assert r.stats.edges_traversed == 9

    def test_bootstrap_counts_local_vertices(self):
        g = random_graph(21, 40, seed=5)
        r = RPQdEngine(g, EngineConfig(num_machines=3)).execute(
            "SELECT COUNT(*) FROM MATCH (a)-[:LINK]->(b)"
        )
        assert r.stats._sum("bootstrapped") == 21
