"""Property-based tests (hypothesis) for core invariants.

The heavyweight property: on arbitrary random graphs and arbitrary
quantifiers, the distributed engine, both baselines, and an independent
walk-semantics reference all agree — across machine counts.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import EngineConfig, GraphBuilder, RPQdEngine
from repro.baselines import BftEngine, RecursiveEngine
from repro.graph import Direction
from repro.graph.partition import BlockPartitioner, HashPartitioner
from repro.pgql import parse, parse_expression
from repro.rpq import IndexOutcome, ReachabilityIndex

from tests.test_engine_end_to_end import reference_pair_count


def build_random_graph(n, edges, labels, seed):
    rng = random.Random(seed)
    b = GraphBuilder()
    for i in range(n):
        b.add_vertex("N", idx=i)
    for _ in range(edges):
        b.add_edge(rng.randrange(n), rng.randrange(n), rng.choice(labels))
    return b.build()


quantifiers = st.one_of(
    st.just((1, None, "+")),
    st.just((0, None, "*")),
    st.builds(
        lambda lo, extra: (lo, lo + extra, f"{{{lo},{lo + extra}}}"),
        st.integers(0, 3),
        st.integers(0, 3),
    ),
    st.builds(lambda lo: (lo, None, f"{{{lo},}}"), st.integers(0, 3)),
)


class TestEngineAgreement:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(2, 18),
        density=st.integers(1, 4),
        quant=quantifiers,
        direction=st.sampled_from(["->", "<-", "-"]),
        machines=st.sampled_from([1, 2, 3]),
    )
    def test_all_engines_match_reference(self, seed, n, density, quant, direction, machines):
        graph = build_random_graph(n, n * density, ["E", "F"], seed)
        min_hops, max_hops, text = quant
        if direction == "->":
            segment, ref_dir = f"-/:E{text}/->", Direction.OUT
        elif direction == "<-":
            segment, ref_dir = f"<-/:E{text}/-", Direction.IN
        else:
            segment, ref_dir = f"-/:E{text}/-", Direction.BOTH
        query = f"SELECT COUNT(*) FROM MATCH (a){segment}(b)"

        expected = reference_pair_count(graph, "E", ref_dir, min_hops, max_hops)
        rpqd = RPQdEngine(graph, EngineConfig(num_machines=machines)).execute(query)
        assert rpqd.scalar() == expected
        assert BftEngine(graph).execute(query).scalar() == expected
        assert RecursiveEngine(graph).execute(query).scalar() == expected

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 10_000),
        machines=st.sampled_from([2, 5]),
        batch=st.sampled_from([1, 3, 64]),
        quantum=st.sampled_from([50.0, 2000.0]),
    )
    def test_runtime_knobs_never_change_results(self, seed, machines, batch, quantum):
        graph = build_random_graph(14, 40, ["E"], seed)
        query = "SELECT COUNT(*) FROM MATCH (a)-/:E{1,3}/->(b)"
        baseline = RPQdEngine(graph, EngineConfig(num_machines=1)).execute(query).scalar()
        tuned = RPQdEngine(
            graph,
            EngineConfig(num_machines=machines, batch_size=batch, quantum=quantum),
        ).execute(query)
        assert tuned.scalar() == baseline


class TestReachabilityIndexProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 5), st.integers(0, 6)),
            min_size=1,
            max_size=40,
        )
    )
    def test_index_invariants(self, ops):
        """The stored depth is the minimum over all visits; outcomes follow
        the paper's rules exactly."""
        index = ReachabilityIndex(0, 0)
        seen = {}
        for src, dst, depth in ops:
            outcome = index.check_and_update(src, dst, depth)
            key = (src, dst)
            if key not in seen:
                assert outcome is IndexOutcome.INSERTED
            elif depth >= seen[key]:
                assert outcome is IndexOutcome.ELIMINATED
            else:
                assert outcome is IndexOutcome.DUPLICATED
            seen[key] = min(seen.get(key, depth), depth)
        for (src, dst), depth in seen.items():
            assert index.depth_of(src, dst) == depth
        assert index.entries == len(seen)
        assert index.modelled_bytes == 12 * len(seen)


class TestPartitionProperties:
    @settings(max_examples=60, deadline=None)
    @given(n=st.integers(0, 200), machines=st.integers(1, 12))
    def test_partitions_cover_exactly(self, n, machines):
        for cls in (HashPartitioner, BlockPartitioner):
            p = cls(n, machines)
            seen = []
            for m in range(machines):
                for v in p.local_vertices(m):
                    assert p.owner(v) == m
                    seen.append(v)
            assert sorted(seen) == list(range(n))


class TestParserProperties:
    # Keywords are not valid identifiers ("by", "as", ...): exclude them.
    from repro.pgql.lexer import KEYWORDS

    names = st.text(alphabet="abcxyz", min_size=1, max_size=5).filter(
        lambda s: s not in TestParserProperties.KEYWORDS
    )

    @settings(max_examples=60, deadline=None)
    @given(
        var=names,
        prop=names,
        value=st.integers(-1000, 1000),
        op=st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
    )
    def test_expression_round_trip(self, var, prop, value, op):
        text = f"{var}.{prop} {op} {value}"
        expr = parse_expression(text)
        assert parse_expression(str(expr)) == expr

    @settings(max_examples=40, deadline=None)
    @given(
        lo=st.integers(0, 9),
        extra=st.integers(0, 9),
        label=st.text(alphabet="ABCDE", min_size=1, max_size=4),
    )
    def test_query_round_trip(self, lo, extra, label):
        text = (
            f"SELECT COUNT(*) FROM MATCH (a)-/:{label}{{{lo},{lo + extra}}}/->(b)"
        )
        q1 = parse(text)
        q2 = parse(str(q1))
        assert str(q1) == str(q2)


class TestAggregationProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(st.integers(-100, 100), min_size=1, max_size=30),
        splits=st.integers(1, 4),
    )
    def test_distributed_partial_aggregation_is_exact(self, values, splits):
        """Partial aggregation across sinks merges to the global answer
        regardless of how rows are distributed over machines."""
        from repro.engine.result import MachineSink, assemble_results
        from repro.plan.stages import ProjectionSpec

        class Plan:
            has_aggregates = True
            group_by = ()
            order_by = ()
            limit = None
            distinct = False
            projections = (
                ProjectionSpec(name="count", compiled=None, aggregate="count"),
                ProjectionSpec(
                    name="sum", compiled=lambda s: s.ctx[0], aggregate="sum"
                ),
                ProjectionSpec(
                    name="min", compiled=lambda s: s.ctx[0], aggregate="min"
                ),
                ProjectionSpec(
                    name="max", compiled=lambda s: s.ctx[0], aggregate="max"
                ),
                ProjectionSpec(
                    name="avg", compiled=lambda s: s.ctx[0], aggregate="avg"
                ),
            )

        plan = Plan()
        sinks = [MachineSink(plan) for _ in range(splits)]
        for i, v in enumerate(values):
            sinks[i % splits].add([v])
        result = assemble_results(plan, sinks).rows[0]
        assert result == (
            len(values),
            sum(values),
            min(values),
            max(values),
            sum(values) / len(values),
        )
