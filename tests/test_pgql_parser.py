"""Unit tests for the PGQL parser and AST."""

import pytest

from repro.errors import PgqlSyntaxError
from repro.graph import Direction
from repro.pgql import (
    Aggregate,
    Binary,
    EdgePattern,
    Literal,
    PropRef,
    Quantifier,
    RpqPattern,
    VarRef,
    parse,
    parse_expression,
    split_conjuncts,
)


class TestSelectFrom:
    def test_count_star(self):
        q = parse("SELECT COUNT(*) FROM MATCH (a)")
        assert len(q.select) == 1
        agg = q.select[0].expr
        assert isinstance(agg, Aggregate)
        assert agg.func == "count" and agg.arg is None

    def test_distinct_and_alias(self):
        q = parse("SELECT DISTINCT a.name AS n FROM MATCH (a:Person)")
        assert q.distinct
        assert q.select[0].alias == "n"

    def test_multiple_match_patterns(self):
        q = parse("SELECT COUNT(*) FROM MATCH (a)->(b), MATCH (c)->(d)")
        assert len(q.match_patterns) == 2

    def test_comma_separated_without_match_keyword(self):
        q = parse("SELECT COUNT(*) FROM MATCH (a)->(b), (b)->(c)")
        assert len(q.match_patterns) == 2

    def test_group_order_limit(self):
        q = parse(
            "SELECT a.city, COUNT(*) FROM MATCH (a:Person) "
            "GROUP BY a.city ORDER BY COUNT(*) DESC, a.city LIMIT 10"
        )
        assert len(q.group_by) == 1
        assert q.order_by[0].descending
        assert not q.order_by[1].descending
        assert q.limit == 10


class TestVertexAndEdgePatterns:
    def test_vertex_variants(self):
        q = parse("SELECT COUNT(*) FROM MATCH (a:Person)-[:KNOWS]->(:Person)-[e]->( )")
        vs = q.match_patterns[0].vertices
        assert vs[0].var == "a" and vs[0].labels == ("Person",)
        assert vs[1].var is None and vs[1].labels == ("Person",)
        assert vs[2].var is None and vs[2].labels == ()

    def test_edge_directions(self):
        q = parse("SELECT COUNT(*) FROM MATCH (a)-[:X]->(b)<-[:Y]-(c)-[:Z]-(d)")
        conns = q.match_patterns[0].connectors
        assert conns[0].direction is Direction.OUT
        assert conns[1].direction is Direction.IN
        assert conns[2].direction is Direction.BOTH

    def test_plain_arrows(self):
        q = parse("SELECT COUNT(*) FROM MATCH (a)->(b)-(c)")
        conns = q.match_patterns[0].connectors
        assert isinstance(conns[0], EdgePattern)
        assert conns[0].labels == ()
        assert conns[0].direction is Direction.OUT
        assert conns[1].direction is Direction.BOTH

    def test_label_alternatives(self):
        q = parse("SELECT COUNT(*) FROM MATCH (m:Post|Comment)-[:LIKES|KNOWS]->(x)")
        assert q.match_patterns[0].vertices[0].labels == ("Post", "Comment")
        assert q.match_patterns[0].connectors[0].labels == ("LIKES", "KNOWS")

    def test_edge_variable(self):
        q = parse("SELECT COUNT(*) FROM MATCH (a)-[e:KNOWS]->(b)")
        assert q.match_patterns[0].connectors[0].var == "e"


class TestRpqSegments:
    @pytest.mark.parametrize(
        "quant,expected",
        [
            ("*", Quantifier(0, None)),
            ("+", Quantifier(1, None)),
            ("?", Quantifier(0, 1)),
            ("{3}", Quantifier(3, 3)),
            ("{2,}", Quantifier(2, None)),
            ("{1,4}", Quantifier(1, 4)),
        ],
    )
    def test_quantifiers(self, quant, expected):
        q = parse(f"SELECT COUNT(*) FROM MATCH (a)-/:p{quant}/->(b)")
        seg = q.match_patterns[0].connectors[0]
        assert isinstance(seg, RpqPattern)
        assert seg.quantifier == expected
        assert seg.direction is Direction.OUT

    def test_reverse_rpq(self):
        q = parse("SELECT COUNT(*) FROM MATCH (a)<-/:p+/-(b)")
        assert q.match_patterns[0].connectors[0].direction is Direction.IN

    def test_undirected_rpq(self):
        q = parse("SELECT COUNT(*) FROM MATCH (a)-/:knows{1,2}/-(b)")
        assert q.match_patterns[0].connectors[0].direction is Direction.BOTH

    def test_bad_quantifier_bounds(self):
        with pytest.raises(PgqlSyntaxError):
            parse("SELECT COUNT(*) FROM MATCH (a)-/:p{3,1}/->(b)")


class TestPathMacros:
    def test_macro_with_where(self):
        q = parse(
            "PATH p AS (x:Person)-[:KNOWS]->(y:Person) WHERE x.age <= y.age "
            "SELECT COUNT(*) FROM MATCH (a)-/:p+/->(b)"
        )
        macro = q.macro("p")
        assert macro is not None
        assert macro.where is not None
        assert macro.pattern.vertices[0].var == "x"

    def test_macro_lookup_case_insensitive(self):
        q = parse("PATH Pat AS (x)->(y) SELECT COUNT(*) FROM MATCH (a)-/:pat*/->(b)")
        assert q.macro("PAT") is not None

    def test_multiple_macros(self):
        q = parse(
            "PATH p1 AS (x)-[:A]->(y) "
            "PATH p2 AS (x)-[:B]->(y) "
            "SELECT COUNT(*) FROM MATCH (a)-/:p1+/->(b)-/:p2*/->(c)"
        )
        assert len(q.path_macros) == 2


class TestExpressions:
    def test_precedence_or_and(self):
        e = parse_expression("a.x = 1 OR a.y = 2 AND a.z = 3")
        assert isinstance(e, Binary) and e.op == "or"
        assert e.right.op == "and"

    def test_arithmetic_precedence(self):
        e = parse_expression("1 + 2 * 3")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_unary_minus(self):
        e = parse_expression("a.x < -1")
        assert e.op == "<"
        assert isinstance(e.right.operand, Literal)

    def test_not(self):
        e = parse_expression("NOT a.x = 1")
        assert e.op == "not"

    def test_function_call(self):
        e = parse_expression("id(a) = 5")
        assert e.left.name == "id"
        assert isinstance(e.left.args[0], VarRef)

    def test_prop_ref(self):
        e = parse_expression("person.firstName")
        assert e == PropRef("person", "firstName")

    def test_string_and_null_literals(self):
        assert parse_expression("'abc'") == Literal("abc")
        assert parse_expression("NULL") == Literal(None)
        assert parse_expression("TRUE") == Literal(True)

    def test_split_conjuncts(self):
        e = parse_expression("a.x = 1 AND b.y = 2 AND c.z = 3")
        parts = split_conjuncts(e)
        assert len(parts) == 3

    def test_variables_and_prop_refs(self):
        e = parse_expression("a.x + b.y < c.z")
        assert e.variables() == {"a", "b", "c"}
        assert e.prop_refs() == {("a", "x"), ("b", "y"), ("c", "z")}


class TestErrors:
    def test_missing_select(self):
        with pytest.raises(PgqlSyntaxError):
            parse("FROM MATCH (a)")

    def test_trailing_garbage(self):
        with pytest.raises(PgqlSyntaxError):
            parse("SELECT COUNT(*) FROM MATCH (a) banana")

    def test_unclosed_vertex(self):
        with pytest.raises(PgqlSyntaxError):
            parse("SELECT COUNT(*) FROM MATCH (a")

    def test_double_headed_edge_rejected(self):
        with pytest.raises(PgqlSyntaxError):
            parse("SELECT COUNT(*) FROM MATCH (a)<-[:X]->(b)")

    def test_round_trip_str_reparses(self):
        text = (
            "PATH p AS (x:Person)-[:KNOWS]->(y:Person) WHERE x.age <= y.age "
            "SELECT COUNT(*) FROM MATCH (a:Person)-/:p{1,3}/->(b:Person) "
            "WHERE a.age > 18"
        )
        q1 = parse(text)
        q2 = parse(str(q1))
        assert str(q1) == str(q2)
