"""Tests for witness-path reconstruction."""

import pytest

from repro import GraphBuilder
from repro.engine import witness_path
from repro.errors import PlanningError
from repro.graph.generators import chain_graph, cycle_graph, random_graph
from repro.graph.types import Direction


class TestSimplePaths:
    def test_chain_shortest_witness(self):
        g = chain_graph(6)
        assert witness_path(g, 0, 3, "NEXT") == [0, 1, 2, 3]

    def test_unreachable_returns_none(self):
        g = chain_graph(4)
        assert witness_path(g, 3, 0, "NEXT") is None

    def test_zero_hops_self(self):
        g = chain_graph(3)
        assert witness_path(g, 1, 1, "NEXT", min_hops=0) == [1]

    def test_min_hops_forces_longer_walk(self):
        g = cycle_graph(4)
        # src == dst with min 1: must go all the way around.
        path = witness_path(g, 0, 0, "NEXT", min_hops=1)
        assert path == [0, 1, 2, 3, 0]

    def test_max_hops_bounds(self):
        g = chain_graph(6)
        assert witness_path(g, 0, 4, "NEXT", max_hops=3) is None
        assert witness_path(g, 0, 4, "NEXT", max_hops=4) == [0, 1, 2, 3, 4]

    def test_bfs_returns_minimum_repetitions(self):
        b = GraphBuilder()
        for _ in range(5):
            b.add_vertex("N")
        for s, d in [(0, 1), (1, 2), (2, 4), (0, 3), (3, 4)]:
            b.add_edge(s, d, "E")
        g = b.build()
        path = witness_path(g, 0, 4, "E")
        assert len(path) == 3  # 0 -> 3 -> 4 beats 0 -> 1 -> 2 -> 4

    def test_pattern_text_form(self):
        g = chain_graph(4)
        assert witness_path(g, 0, 2, "(x)-[:NEXT]->(y)") == [0, 1, 2]

    def test_reverse_direction_pattern(self):
        g = chain_graph(4)
        assert witness_path(g, 3, 1, "(x)<-[:NEXT]-(y)") == [3, 2, 1]


class TestMultiHopMacro:
    def test_intermediates_included(self):
        g = chain_graph(7)
        path = witness_path(g, 0, 4, "(x)-[:NEXT]->(m)-[:NEXT]->(y)")
        assert path == [0, 1, 2, 3, 4]  # two repetitions, intermediates kept

    def test_parity_constraint(self):
        g = chain_graph(7)
        # Two-hop repetitions can never land on an odd offset.
        assert witness_path(g, 0, 3, "(x)-[:NEXT]->(m)-[:NEXT]->(y)") is None


class TestFilters:
    def test_where_filter_rejects_paths(self):
        b = GraphBuilder()
        v = [b.add_vertex("N", score=s) for s in (1, 5, 2, 9)]
        for i in range(3):
            b.add_edge(v[i], v[i + 1], "E")
        g = b.build()
        # Ascending-score walks only: 0(1) -> 1(5) fails 5 <= 2 at hop 2.
        assert (
            witness_path(g, 0, 3, "(x)-[:E]->(y)", where="x.score <= y.score")
            is None
        )
        assert witness_path(g, 0, 1, "(x)-[:E]->(y)", where="x.score <= y.score") == [
            0,
            1,
        ]

    def test_edge_property_filter(self):
        b = GraphBuilder()
        for _ in range(4):
            b.add_vertex("N")
        b.add_edge(0, 1, "E", w=10)
        b.add_edge(1, 2, "E", w=1)  # too small
        b.add_edge(1, 3, "E", w=10)
        g = b.build()
        path = witness_path(g, 0, 3, "(x)-[t:E]->(y)", where="t.w >= 5")
        assert path == [0, 1, 3]
        assert witness_path(g, 0, 2, "(x)-[t:E]->(y)", where="t.w >= 5") is None

    def test_label_constraints(self):
        b = GraphBuilder()
        a = b.add_vertex("A")
        bad = b.add_vertex("B")
        c = b.add_vertex("A")
        b.add_edge(a, bad, "E")
        b.add_edge(bad, c, "E")
        g = b.build()
        # Repetitions must connect A-labelled vertices only.
        assert witness_path(g, a, c, "(x:A)-[:E]->(y:A)") is None


class TestUnboundedAndConsistency:
    def test_unbounded_on_cycle(self):
        g = cycle_graph(5)
        path = witness_path(g, 0, 3, "NEXT")
        assert path == [0, 1, 2, 3]

    def test_witness_validates_against_graph(self):
        g = random_graph(25, 80, seed=12)
        count = 0
        for dst in range(25):
            path = witness_path(g, 0, dst, "LINK", min_hops=1, max_hops=4)
            if path is None:
                continue
            count += 1
            assert path[0] == 0 and path[-1] == dst
            assert 1 <= len(path) - 1 <= 4
            for u, v in zip(path, path[1:]):
                assert g.find_edge(u, v, Direction.OUT) >= 0
        assert count > 0

    def test_pattern_without_edge_rejected(self):
        g = chain_graph(3)
        with pytest.raises(PlanningError):
            witness_path(g, 0, 1, "(x)")
