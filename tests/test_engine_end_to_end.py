"""End-to-end correctness tests for the distributed engine.

Reference results are computed with an independent BFS over the raw graph
(no shared code with the engine or the baselines).
"""

from collections import deque

import pytest

from repro import EngineConfig, GraphBuilder, RPQdEngine
from repro.graph import Direction
from repro.graph.generators import (
    chain_graph,
    complete_graph,
    cycle_graph,
    random_graph,
    reply_forest,
    star_graph,
    two_label_graph,
)


def reference_reachable(graph, src, label, direction, min_hops, max_hops):
    """Independent reference with homomorphic *walk* semantics.

    ``dst`` is reachable iff some walk of length within ``[min, max]``
    exists.  Bounded: per-level frontier sets, union of levels min..max.
    Unbounded: exact-``min`` prefix of level sets, then a visited-set BFS
    closure (any suffix length).  Note a plain visited-set BFS is wrong for
    ``min >= 2``.
    """
    label_id = graph.edge_labels.id_of(label)

    def successors(level):
        nxt = set()
        if label_id is None:  # label absent from the graph: no edges match
            return nxt
        for v in level:
            for w, _e in graph.neighbors(v, direction, label_id):
                nxt.add(w)
        return nxt

    level = {src}
    results = set()
    if min_hops == 0:
        results.add(src)
    if max_hops is not None:
        for depth in range(1, max_hops + 1):
            level = successors(level)
            if not level:
                break
            if depth >= min_hops:
                results |= level
        return results
    for _ in range(min_hops):
        level = successors(level)
        if not level:
            return results
    visited = set(level)
    results |= level
    frontier = level
    while frontier:
        frontier = {w for w in successors(frontier) if w not in visited}
        visited |= frontier
        results |= frontier
    return results


def reference_pair_count(graph, label, direction, min_hops, max_hops, sources=None):
    total = 0
    for src in sources if sources is not None else graph.vertices():
        total += len(
            reference_reachable(graph, src, label, direction, min_hops, max_hops)
        )
    return total


@pytest.fixture(params=[1, 2, 4])
def machines(request):
    return request.param


class TestFixedPatterns:
    def test_edge_count(self, machines):
        g = random_graph(30, 80, seed=1)
        eng = RPQdEngine(g, EngineConfig(num_machines=machines))
        assert eng.execute("SELECT COUNT(*) FROM MATCH (a)-[:LINK]->(b)").scalar() == 80

    def test_two_hop(self, machines):
        g = star_graph(6)
        eng = RPQdEngine(g, EngineConfig(num_machines=machines))
        # star: 0 -> leaves; two-hop paths: none except via 0: (0,leaf) only
        assert eng.execute("SELECT COUNT(*) FROM MATCH (a)->(b)->(c)").scalar() == 0

    def test_triangle_cycle_closing(self, machines):
        b = GraphBuilder()
        for _ in range(4):
            b.add_vertex("N")
        for s, d in [(0, 1), (1, 2), (2, 0), (1, 3)]:
            b.add_edge(s, d, "E")
        g = b.build()
        eng = RPQdEngine(g, EngineConfig(num_machines=machines))
        assert (
            eng.execute("SELECT COUNT(*) FROM MATCH (a)->(b)->(c)->(a)").scalar() == 3
        )

    def test_branching_pattern_with_inspect(self, machines):
        # (a)->(b)->(c) and (b)->(d): count over a path 0->1->2, 1->3
        b = GraphBuilder()
        for _ in range(4):
            b.add_vertex("N")
        for s, d in [(0, 1), (1, 2), (1, 3)]:
            b.add_edge(s, d, "E")
        g = b.build()
        eng = RPQdEngine(g, EngineConfig(num_machines=machines))
        # b=1: c in {2,3}, d in {2,3} -> 4 combos
        assert (
            eng.execute(
                "SELECT COUNT(*) FROM MATCH (a)->(b)->(c), MATCH (b)->(d)"
            ).scalar()
            == 4
        )

    def test_undirected_edge(self, machines):
        g = chain_graph(5)
        eng = RPQdEngine(g, EngineConfig(num_machines=machines))
        assert eng.execute("SELECT COUNT(*) FROM MATCH (a)-[:NEXT]-(b)").scalar() == 8

    def test_filters_on_properties(self, machines):
        g = two_label_graph(40, seed=6)
        eng = RPQdEngine(g, EngineConfig(num_machines=machines))
        expected = 0
        for e in range(g.num_edges):
            src, dst = g.edge_src[e], g.edge_dst[e]
            if (g.vprops.get("weight", src) or 0) > 50 and (
                g.vprops.get("weight", dst) or 0
            ) < 50:
                expected += 1
        got = eng.execute(
            "SELECT COUNT(*) FROM MATCH (a)-[:X|Y]->(b) "
            "WHERE a.weight > 50 AND b.weight < 50"
        ).scalar()
        assert got == expected


class TestRpqAgainstReference:
    @pytest.mark.parametrize(
        "min_hops,max_hops,quant",
        [(1, None, "+"), (0, None, "*"), (2, 3, "{2,3}"), (1, 1, "{1}"), (0, 1, "?")],
    )
    def test_random_graph_counts(self, machines, min_hops, max_hops, quant):
        g = random_graph(25, 70, seed=42)
        eng = RPQdEngine(g, EngineConfig(num_machines=machines))
        got = eng.execute(
            f"SELECT COUNT(*) FROM MATCH (a)-/:LINK{quant}/->(b)"
        ).scalar()
        expected = reference_pair_count(g, "LINK", Direction.OUT, min_hops, max_hops)
        assert got == expected

    def test_reverse_direction(self, machines):
        g = random_graph(20, 50, seed=11)
        eng = RPQdEngine(g, EngineConfig(num_machines=machines))
        got = eng.execute("SELECT COUNT(*) FROM MATCH (a)<-/:LINK{1,2}/-(b)").scalar()
        expected = reference_pair_count(g, "LINK", Direction.IN, 1, 2)
        assert got == expected

    def test_undirected_rpq(self, machines):
        g = chain_graph(7)
        eng = RPQdEngine(g, EngineConfig(num_machines=machines))
        got = eng.execute(
            "SELECT COUNT(*) FROM MATCH (a)-/:NEXT{2,3}/-(b) WHERE id(a)=0"
        ).scalar()
        expected = len(reference_reachable(g, 0, "NEXT", Direction.BOTH, 2, 3))
        assert got == expected

    def test_complete_graph_cycles(self, machines):
        g = complete_graph(5)
        eng = RPQdEngine(g, EngineConfig(num_machines=machines))
        # Within 2 hops every vertex reaches all 5 (itself via a 2-cycle).
        assert eng.execute("SELECT COUNT(*) FROM MATCH (a)-/:LINK{1,2}/->(b)").scalar() == 25

    def test_unbounded_on_cycle_terminates(self, machines):
        g = cycle_graph(8)
        eng = RPQdEngine(g, EngineConfig(num_machines=machines))
        assert eng.execute("SELECT COUNT(*) FROM MATCH (a)-/:NEXT*/->(b)").scalar() == 64

    def test_single_source(self, machines):
        g = random_graph(30, 90, seed=5)
        eng = RPQdEngine(g, EngineConfig(num_machines=machines))
        got = eng.execute(
            "SELECT COUNT(*) FROM MATCH (a)-/:LINK+/->(b) WHERE id(a) = 7"
        ).scalar()
        expected = len(reference_reachable(g, 7, "LINK", Direction.OUT, 1, None))
        assert got == expected

    def test_multi_hop_macro(self, machines):
        # PATH of two hops: each repetition advances two edges.
        g = chain_graph(9)
        eng = RPQdEngine(g, EngineConfig(num_machines=machines))
        got = eng.execute(
            "PATH two AS (x)-[:NEXT]->(m)-[:NEXT]->(y) "
            "SELECT COUNT(*) FROM MATCH (a)-/:two+/->(b)"
        ).scalar()
        # pairs (i, i+2k): for chain of 9: k=1..4 -> 7+5+3+1 = 16
        assert got == 16

    def test_two_rpq_segments(self, machines):
        g = chain_graph(6)
        eng = RPQdEngine(g, EngineConfig(num_machines=machines))
        got = eng.execute(
            "SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)-/:NEXT+/->(c)"
        ).scalar()
        assert got == 20  # C(6,3)

    def test_rpq_then_fixed_edge(self, machines):
        g = chain_graph(6)
        eng = RPQdEngine(g, EngineConfig(num_machines=machines))
        got = eng.execute(
            "SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)-[:NEXT]->(c)"
        ).scalar()
        # pairs (a,b) with b < 5 then c=b+1: pairs ending at b in 1..4:
        # b=1:1, b=2:2, b=3:3, b=4:4 -> 10
        assert got == 10


class TestProjectionsAndAggregates:
    @pytest.fixture
    def people(self):
        b = GraphBuilder()
        cities = ["Oslo", "Oslo", "Rome", "Rome", "Rome"]
        for i, c in enumerate(cities):
            b.add_vertex("Person", name=f"p{i}", city=c, age=20 + i * 5)
        for s, d in [(0, 1), (1, 2), (2, 3), (3, 4), (0, 2)]:
            b.add_edge(s, d, "KNOWS")
        return b.build()

    def test_projection_rows(self, people, machines):
        eng = RPQdEngine(people, EngineConfig(num_machines=machines))
        r = eng.execute(
            "SELECT a.name, b.name FROM MATCH (a)-[:KNOWS]->(b) WHERE a.city = 'Oslo'"
        )
        assert sorted(r.rows) == [("p0", "p1"), ("p0", "p2"), ("p1", "p2")]

    def test_group_by_count(self, people, machines):
        eng = RPQdEngine(people, EngineConfig(num_machines=machines))
        r = eng.execute(
            "SELECT a.city, COUNT(*) FROM MATCH (a)-[:KNOWS]->(b) GROUP BY a.city"
        )
        assert dict(r.rows) == {"Oslo": 3, "Rome": 2}

    def test_sum_min_max_avg(self, people, machines):
        eng = RPQdEngine(people, EngineConfig(num_machines=machines))
        r = eng.execute(
            "SELECT SUM(b.age), MIN(b.age), MAX(b.age), AVG(b.age) "
            "FROM MATCH (a)-[:KNOWS]->(b) WHERE a.name = 'p0'"
        )
        # b in {p1, p2}: ages 25, 30
        assert r.rows[0] == (55, 25, 30, 27.5)

    def test_count_distinct(self, people, machines):
        eng = RPQdEngine(people, EngineConfig(num_machines=machines))
        r = eng.execute(
            "SELECT COUNT(DISTINCT b.city) FROM MATCH (a)-[:KNOWS]->(b)"
        )
        assert r.scalar() == 2

    def test_distinct_rows(self, people, machines):
        eng = RPQdEngine(people, EngineConfig(num_machines=machines))
        r = eng.execute("SELECT DISTINCT b.city FROM MATCH (a)-[:KNOWS]->(b)")
        assert sorted(v[0] for v in r.rows) == ["Oslo", "Rome"]

    def test_order_by_limit(self, people, machines):
        eng = RPQdEngine(people, EngineConfig(num_machines=machines))
        r = eng.execute(
            "SELECT b.age AS age FROM MATCH (a)-[:KNOWS]->(b) ORDER BY age DESC LIMIT 2"
        )
        assert r.column("age") == [40, 35]

    def test_empty_match_aggregate(self, people, machines):
        eng = RPQdEngine(people, EngineConfig(num_machines=machines))
        r = eng.execute("SELECT COUNT(*) FROM MATCH (a:Robot)")
        assert r.scalar() == 0

    def test_empty_match_sum_is_null(self, people, machines):
        eng = RPQdEngine(people, EngineConfig(num_machines=machines))
        r = eng.execute("SELECT SUM(a.age) FROM MATCH (a:Robot)")
        assert r.rows[0][0] is None


class TestStatsSurface:
    def test_depth_table_shape(self):
        g = reply_forest(30, 3, 5, seed=3)
        eng = RPQdEngine(g, EngineConfig(num_machines=4))
        r = eng.execute(
            "SELECT COUNT(*) FROM MATCH (c:Comment)-/:REPLY_OF+/->(p:Post)"
        )
        table = r.stats.depth_table(0)
        assert table[0][0] == 0  # depth column starts at 0
        matches = [row[1] for row in table]
        assert matches[0] >= matches[-1]  # decay toward the deep end

    def test_machine_count_does_not_change_results(self):
        g = random_graph(40, 150, seed=21)
        q = "SELECT COUNT(*) FROM MATCH (a)-/:LINK{1,3}/->(b)"
        results = {
            m: RPQdEngine(g, EngineConfig(num_machines=m)).execute(q).scalar()
            for m in (1, 2, 4, 8)
        }
        assert len(set(results.values())) == 1

    def test_messages_only_flow_with_multiple_machines(self):
        g = random_graph(30, 90, seed=2)
        q = "SELECT COUNT(*) FROM MATCH (a)-/:LINK{1,2}/->(b)"
        r1 = RPQdEngine(g, EngineConfig(num_machines=1)).execute(q)
        r4 = RPQdEngine(g, EngineConfig(num_machines=4)).execute(q)
        assert r1.stats.batches_sent == 0
        assert r4.stats.batches_sent > 0
        assert r1.scalar() == r4.scalar()

    def test_index_entries_accounted(self):
        g = chain_graph(10)
        eng = RPQdEngine(g, EngineConfig(num_machines=2))
        r = eng.execute("SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)")
        assert r.stats.index_entries == 45
        assert r.stats.index_bytes == 45 * 12
