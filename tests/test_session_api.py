"""Tests for the Session/QueryHandle API, the plan cache, and the
deprecated RPQdEngine shim."""

import warnings

import pytest

import repro
from repro import (
    EngineConfig,
    QueryCancelledError,
    RPQdEngine,
    Session,
    SessionClosedError,
    connect,
)
from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.graph.generators import chain_graph, random_graph
from repro.plan.cache import PlanCache, normalize_query_text

COUNT_Q = "SELECT COUNT(*) FROM MATCH (a)-[:NEXT]->(b)"
RPQ_Q = "SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)"


class TestConnect:
    def test_connect_builds_config_from_kwargs(self):
        session = connect(chain_graph(6), num_machines=3, sanitize=True)
        assert session.config.num_machines == 3
        assert session.config.sanitize is True
        assert session.dgraph.num_machines == 3

    def test_connect_overrides_explicit_config(self):
        base = EngineConfig(num_machines=2, batch_size=8)
        session = connect(chain_graph(6), config=base, batch_size=16)
        assert session.config.batch_size == 16
        assert session.config.num_machines == 2

    def test_connect_invalid_kwarg_is_config_error(self):
        with pytest.raises((ConfigError, TypeError)):
            connect(chain_graph(6), num_machines=0)

    def test_context_manager_closes(self):
        with connect(chain_graph(6), num_machines=2) as session:
            assert session.execute(COUNT_Q).scalar() == 5
        assert session.closed
        with pytest.raises(SessionClosedError):
            session.execute(COUNT_Q)
        with pytest.raises(SessionClosedError):
            session.submit(COUNT_Q)


class TestExecute:
    @pytest.fixture
    def session(self):
        return connect(chain_graph(8), num_machines=2)

    def test_execute_matches_legacy_engine(self, session):
        assert session.execute(COUNT_Q).scalar() == 7
        assert session.execute(RPQ_Q).scalar() == 28

    def test_execute_config_override_repartitions(self, session):
        result = session.execute(RPQ_Q, config=EngineConfig(num_machines=5))
        assert result.scalar() == 28
        assert result.stats.num_machines == 5


class TestSubmit:
    def test_handle_result_matches_execute(self):
        g = random_graph(40, 120, seed=5)
        session = connect(g, num_machines=3)
        q = "SELECT COUNT(*) FROM MATCH (a)-/:LINK{1,4}/->(b)"
        solo = session.execute(q).scalar()
        handle = session.submit(q)
        assert not handle.done()
        assert handle.result().scalar() == solo
        assert handle.done()
        # result() is idempotent (cached).
        assert handle.result() is handle.result()

    def test_many_handles_interleave_and_all_match(self):
        g = random_graph(40, 120, seed=5)
        session = connect(g, num_machines=3, max_concurrent_queries=3)
        queries = [
            "SELECT COUNT(*) FROM MATCH (a)-[:LINK]->(b)",
            "SELECT COUNT(*) FROM MATCH (a)-/:LINK+/->(b)",
            "SELECT COUNT(*) FROM MATCH (a)-/:LINK{1,2}/->(b)",
        ]
        solo = [session.execute(q).rows for q in queries]
        handles = [session.submit(q) for q in queries]
        session.drain()
        assert all(h.done() for h in handles)
        for h, rows in zip(handles, solo):
            assert h.result().rows == rows

    def test_cancel_before_running(self):
        session = connect(chain_graph(8), num_machines=2)
        handle = session.submit(RPQ_Q)
        assert handle.cancel() is True
        assert handle.done() and handle.cancelled()
        with pytest.raises(QueryCancelledError):
            handle.result()

    def test_cancel_after_completion_returns_false(self):
        session = connect(chain_graph(8), num_machines=2)
        handle = session.submit(COUNT_Q)
        handle.result()
        assert handle.cancel() is False

    def test_deadline_produces_timed_out_partial(self):
        g = random_graph(60, 240, seed=3)
        session = connect(g, num_machines=3)
        q = "SELECT COUNT(*) FROM MATCH (a)-/:LINK+/->(b)"
        handle = session.submit(q, deadline=2)
        result = handle.result()
        assert result.timed_out
        assert result.complete is False

    def test_submit_rejects_solo_only_options(self):
        session = connect(chain_graph(8), num_machines=2)
        # A per-query fault plan on a fault-free session differs from the
        # cluster's (None) plan: chaos is cluster-level, so it's rejected.
        faulty = session.config.with_(faults=FaultPlan(seed=1, drop_prob=0.1))
        with pytest.raises(ConfigError):
            session.submit(COUNT_Q, config=faulty)
        with pytest.raises(ConfigError):
            session.submit(COUNT_Q, config=session.config.with_(schedule_seed=3))
        # recovery is no longer solo-only: it arms per-query checkpoints.
        handle = session.submit(
            COUNT_Q, config=session.config.with_(recovery=True)
        )
        session.drain()
        assert handle.result().complete

    def test_close_cancels_outstanding_handles(self):
        session = connect(chain_graph(8), num_machines=2)
        handle = session.submit(RPQ_Q)
        session.close()
        assert handle.cancelled()


class TestPlanCache:
    def test_normalization_collapses_whitespace(self):
        assert (
            normalize_query_text("SELECT  COUNT(*)\n FROM   MATCH (a)")
            == "SELECT COUNT(*) FROM MATCH (a)"
        )

    def test_cache_hit_counting(self):
        cache = PlanCache()
        assert cache.lookup("SELECT 1") is None
        cache.store("SELECT 1", False, object())
        assert cache.lookup("SELECT 1") is not None
        assert cache.lookup("  SELECT   1 ") is not None
        assert (cache.hits, cache.misses) == (2, 1)
        assert len(cache) == 1

    def test_session_shares_plans_across_execute_and_submit(self):
        session = connect(chain_graph(8), num_machines=2)
        p1 = session.compile(COUNT_Q)
        session.execute(COUNT_Q)
        handle = session.submit("SELECT  COUNT(*) FROM  MATCH (a)-[:NEXT]->(b)")
        assert handle.result().scalar() == 7
        assert session.compile(COUNT_Q) is p1
        assert session.plan_cache.hits >= 3
        assert session.plan_cache.misses == 1


class TestDeprecatedShim:
    def test_engine_warns_and_delegates(self):
        g = chain_graph(8)
        with pytest.warns(DeprecationWarning, match="repro.connect"):
            engine = RPQdEngine(g, EngineConfig(num_machines=2))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no further warnings after init
            assert engine.execute(COUNT_Q).scalar() == 7
            assert engine.compile(COUNT_Q) is engine.compile(COUNT_Q)
            assert "rpq_control" in engine.explain(RPQ_Q)
            assert engine.config.num_machines == 2
            assert engine.dgraph.num_machines == 2

    def test_shim_equivalent_to_session(self):
        g = random_graph(30, 90, seed=9)
        with pytest.warns(DeprecationWarning):
            engine = RPQdEngine(g, EngineConfig(num_machines=2))
        session = Session(g, EngineConfig(num_machines=2))
        for q in (
            "SELECT COUNT(*) FROM MATCH (a)-[:LINK]->(b)",
            "SELECT COUNT(*) FROM MATCH (a)-/:LINK+/->(b)",
        ):
            legacy = engine.execute(q)
            new = session.execute(q)
            assert legacy.rows == new.rows
            assert legacy.stats.rounds == new.stats.rounds

    def test_public_exports(self):
        for name in ("connect", "Session", "QueryHandle", "FlowConfig",
                     "ObsConfig", "FaultConfig", "RecoveryConfig",
                     "AdmissionError", "QueryCancelledError",
                     "SessionClosedError"):
            assert hasattr(repro, name), name
            assert name in repro.__all__
