"""Unit tests for flow control, the simulated network, and messages."""

import pytest

from repro import EngineConfig, GraphBuilder
from repro.pgql import parse
from repro.plan import compile_query
from repro.runtime.buffers import FlowControl, SHARED, remote_target_stages
from repro.runtime.message import Batch, DoneMessage, StatusMessage
from repro.runtime.network import SimulatedNetwork
from repro.runtime.stats import MachineStats


@pytest.fixture(scope="module")
def rpq_plan():
    b = GraphBuilder()
    for i in range(4):
        b.add_vertex("N", idx=i)
    b.add_edge(0, 1, "E")
    g = b.build()
    return compile_query(parse("SELECT COUNT(*) FROM MATCH (a)-/:E+/->(b)"), g)


class TestRemoteTargets:
    def test_rpq_plan_targets(self, rpq_plan):
        # Only neighbor/inspect hop targets receive remote messages; in the
        # canonical RPQ plan that is the second path stage.
        targets = remote_target_stages(rpq_plan)
        assert targets == [3]


class TestFlowControl:
    def make(self, config=None, plan=None):
        config = config or EngineConfig(num_machines=4, buffers_per_machine=64)
        stats = MachineStats()
        return FlowControl(0, plan, config, stats), stats, config

    def test_acquire_release_cycle(self, rpq_plan):
        flow, stats, _ = self.make(plan=rpq_plan)
        key = flow.try_acquire(1, 3, 0, is_path_stage=True)
        assert key is not None
        assert flow.in_flight == 1
        flow.release(key)
        assert flow.in_flight == 0

    def test_per_depth_partitions_are_independent(self, rpq_plan):
        config = EngineConfig(num_machines=4, buffers_per_machine=64, rpq_flow_depth=2)
        flow, _, _ = self.make(config, rpq_plan)
        cap0 = flow.capacity_of(1, 3, 0, True)
        # Exhaust depth-0 credits; depth-1 still grants.
        for _ in range(cap0):
            assert flow.try_acquire(1, 3, 0, True) is not None
        assert flow.try_acquire(1, 3, 0, True) is None
        assert flow.try_acquire(1, 3, 1, True) is not None

    def test_deep_depths_share_then_overflow(self, rpq_plan):
        config = EngineConfig(
            num_machines=2,
            buffers_per_machine=32,
            rpq_flow_depth=1,
            rpq_shared_credits=2,
            rpq_overflow_per_depth=1,
        )
        flow, stats, _ = self.make(config, rpq_plan)
        # Depth 5 >= D: two shared credits, then one overflow per depth.
        assert flow.try_acquire(1, 3, 5, True) == (1, 3, SHARED)
        assert flow.try_acquire(1, 3, 6, True) == (1, 3, SHARED)
        ovf = flow.try_acquire(1, 3, 5, True)
        assert ovf == (1, 3, ("ovf", 5))
        assert stats.overflow_grants == 1
        # Overflow for depth 5 exhausted; depth 6 overflow independent.
        assert flow.try_acquire(1, 3, 5, True) is None
        assert flow.try_acquire(1, 3, 6, True) == (1, 3, ("ovf", 6))

    def test_release_underflow_raises(self, rpq_plan):
        flow, _, _ = self.make(plan=rpq_plan)
        with pytest.raises(RuntimeError):
            flow.release((1, 3, 0))

    def test_peak_tracking(self, rpq_plan):
        flow, stats, _ = self.make(plan=rpq_plan)
        keys = [flow.try_acquire(1, 3, d, True) for d in range(3)]
        assert stats.peak_inflight_buffers == 3
        for key in keys:
            flow.release(key)
        assert stats.peak_inflight_buffers == 3  # peak is sticky


class TestBatch:
    def test_add_copies_context(self):
        batch = Batch(src_machine=0, dst_machine=1, target_stage=2, depth=0)
        ctx = [1, 2, 3]
        batch.add(7, ctx)
        ctx[0] = 99
        assert batch.contexts[0] == (7, [1, 2, 3])

    def test_priority_prefers_deeper_then_later_stage(self):
        shallow = Batch(0, 1, target_stage=5, depth=1)
        deep = Batch(0, 1, target_stage=3, depth=4)
        late = Batch(0, 1, target_stage=6, depth=1)
        ordered = sorted([shallow, deep, late], key=lambda b: b.priority)
        assert ordered[0] is deep
        assert ordered[1] is late
        assert ordered[2] is shallow

    def test_modelled_bytes_grow_with_contexts(self):
        batch = Batch(0, 1, 2, 0)
        empty = batch.modelled_bytes(4)
        batch.add(1, [None] * 4)
        assert batch.modelled_bytes(4) > empty


class TestNetwork:
    def test_delivery_after_delay(self):
        net = SimulatedNetwork(2, net_delay_rounds=2)
        msg = DoneMessage(src_machine=0, dst_machine=1, credit_key="k")
        net.send(msg, now_round=5)
        assert net.drain(1, 6) == []
        assert net.drain(1, 7) == [msg]
        assert net.pending() == 0

    def test_order_is_deterministic(self):
        net = SimulatedNetwork(2, net_delay_rounds=0)
        a = DoneMessage(0, 1, "a")
        b = DoneMessage(0, 1, "b")
        net.send(a, 1)
        net.send(b, 1)
        assert net.drain(1, 1) == [a, b]

    def test_extra_delay_hook(self):
        net = SimulatedNetwork(2, net_delay_rounds=1)
        net.extra_delay_fn = lambda m: 3
        msg = StatusMessage(src_machine=0, dst_machine=1)
        net.send(msg, 0)
        assert net.drain(1, 3) == []
        assert net.drain(1, 4) == [msg]

    def test_duplicate_hook(self):
        net = SimulatedNetwork(2, net_delay_rounds=0)
        net.duplicate_fn = lambda m: True
        msg = StatusMessage(src_machine=0, dst_machine=1)
        net.send(msg, 0)
        assert net.drain(1, 0) == [msg]
        assert net.drain(1, 1) == [msg]

    def test_pending_kinds(self):
        net = SimulatedNetwork(2, net_delay_rounds=5)
        net.send(Batch(0, 1, 2, 0), 0)
        net.send(DoneMessage(0, 1, "k"), 0)
        net.send(StatusMessage(0, 1), 0)
        assert net.pending_kinds() == {"batch": 1, "done": 1, "status": 1}
