"""Tests for the distributed-plan compiler: stages, hops, slots, RPQ expansion."""

import pytest

from repro.errors import PlanningError
from repro.graph import GraphBuilder
from repro.pgql import parse
from repro.plan import HopKind, StageKind, compile_query, explain


@pytest.fixture(scope="module")
def graph():
    b = GraphBuilder()
    people = [b.add_vertex("Person", name=f"p{i}", age=20 + i) for i in range(4)]
    city = b.add_vertex("City", name="Oslo")
    for i in range(3):
        b.add_edge(people[i], people[i + 1], "KNOWS", since=2000 + i)
    b.add_edge(people[0], city, "LOCATED_IN")
    return b.build()


def compiled(graph, text):
    return compile_query(parse(text), graph)


class TestSimplePlans:
    def test_two_hop_plan_shape(self, graph):
        plan = compiled(graph, "SELECT COUNT(*) FROM MATCH (a:Person)-[:KNOWS]->(b:Person)")
        kinds = [s.kind for s in plan.stages]
        assert kinds == [StageKind.VERTEX, StageKind.VERTEX]
        assert plan.stages[0].hop.kind is HopKind.NEIGHBOR
        assert plan.stages[1].hop.kind is HopKind.OUTPUT

    def test_single_vertex_plan(self, graph):
        plan = compiled(graph, "SELECT a.name FROM MATCH (a:City)")
        assert plan.num_stages == 1
        assert plan.stages[0].hop.kind is HopKind.OUTPUT

    def test_bootstrap_single_vertex(self, graph):
        plan = compiled(graph, "SELECT COUNT(*) FROM MATCH (a)->(b) WHERE id(a) = 2")
        assert plan.bootstrap_single_vertex == 2

    def test_label_ids_resolved(self, graph):
        plan = compiled(graph, "SELECT COUNT(*) FROM MATCH (a:Person)")
        person = graph.vertex_labels.id_of("Person")
        assert plan.stages[0].label_ids == ((person,),)

    def test_unknown_label_is_impossible(self, graph):
        plan = compiled(graph, "SELECT COUNT(*) FROM MATCH (a:Alien)")
        assert plan.stages[0].label_ids == ((-2,),)

    def test_captures_cover_projections(self, graph):
        plan = compiled(graph, "SELECT a.name, b.age FROM MATCH (a)-[:KNOWS]->(b)")
        cap_slots = {
            (s.var, c.prop)
            for s in plan.stages
            for c in s.captures
            if c.kind == "prop"
        }
        assert ("a", "name") in cap_slots
        assert ("b", "age") in cap_slots

    def test_cycle_plan_uses_edge_hop(self, graph):
        plan = compiled(graph, "SELECT COUNT(*) FROM MATCH (a)->(b)->(c)->(a)")
        hop_kinds = [s.hop.kind for s in plan.stages if s.hop]
        assert HopKind.EDGE in hop_kinds

    def test_branching_plan_uses_inspect(self, graph):
        plan = compiled(
            graph,
            "SELECT COUNT(*) FROM MATCH (a)->(b)->(c), MATCH (b)->(d) WHERE id(a)=0",
        )
        hop_kinds = [s.hop.kind for s in plan.stages if s.hop]
        assert HopKind.INSPECT in hop_kinds

    def test_producers_chain(self, graph):
        plan = compiled(graph, "SELECT COUNT(*) FROM MATCH (a)-[:KNOWS]->(b)")
        assert plan.stages[0].producers == ()
        assert plan.stages[1].producers == ((0, "same"),)


class TestRpqPlans:
    def test_rpq_expansion_shape(self, graph):
        plan = compiled(
            graph, "SELECT COUNT(*) FROM MATCH (a:Person)-/:KNOWS{1,3}/->(b:Person)"
        )
        kinds = [s.kind for s in plan.stages]
        assert kinds == [
            StageKind.VERTEX,       # a
            StageKind.RPQ_CONTROL,  # control
            StageKind.PATH,         # macro x
            StageKind.PATH,         # macro y
            StageKind.VERTEX,       # b (exit)
        ]
        spec = plan.stages[1].rpq
        assert spec.min_hops == 1 and spec.max_hops == 3
        assert spec.path_entry == 2
        assert spec.exit_stage == 4
        assert spec.path_stages == (2, 3)

    def test_control_entry_flags(self, graph):
        plan = compiled(graph, "SELECT COUNT(*) FROM MATCH (a)-/:KNOWS+/->(b)")
        assert plan.stages[0].hop.control_entry == "init"
        last_path = plan.stages[plan.stages[1].rpq.path_stages[-1]]
        assert last_path.hop.control_entry == "advance"

    def test_unbounded_quantifier(self, graph):
        plan = compiled(graph, "SELECT COUNT(*) FROM MATCH (a)-/:KNOWS*/->(b)")
        spec = plan.rpq_specs()[0]
        assert spec.min_hops == 0 and spec.max_hops is None

    def test_macro_with_filter_compiles(self, graph):
        plan = compiled(
            graph,
            "PATH p AS (x:Person)-[:KNOWS]->(y:Person) WHERE x.age <= y.age "
            "SELECT COUNT(*) FROM MATCH (a:Person)-/:p+/->(b:Person)",
        )
        path_stages = [s for s in plan.stages if s.kind is StageKind.PATH]
        # The macro WHERE attaches at y's path stage.
        assert path_stages[1].filter is not None

    def test_macro_multi_hop_path_stages(self, graph):
        plan = compiled(
            graph,
            "PATH p AS (x)-[:KNOWS]->(m)-[:KNOWS]->(y) "
            "SELECT COUNT(*) FROM MATCH (a)-/:p+/->(b)",
        )
        spec = plan.rpq_specs()[0]
        assert len(spec.path_stages) == 3

    def test_same_macro_twice_gets_renamed_vars(self, graph):
        plan = compiled(
            graph,
            "PATH p AS (x)-[:KNOWS]->(y) "
            "SELECT COUNT(*) FROM MATCH (a)-/:p+/->(b)-/:p+/->(c)",
        )
        assert plan.rpq_count == 2
        path_vars = [s.var for s in plan.stages if s.kind is StageKind.PATH]
        assert len(set(path_vars)) == 4  # x, y, x@1, y@1

    def test_producers_of_rpq_stages(self, graph):
        plan = compiled(graph, "SELECT COUNT(*) FROM MATCH (a)-/:KNOWS+/->(b)")
        control = next(s for s in plan.stages if s.kind is StageKind.RPQ_CONTROL)
        rels = {rel for _, rel in control.producers}
        assert rels == {"zero", "plus_one"}
        exit_stage = plan.stages[control.rpq.exit_stage]
        assert (control.index, "any") in exit_stage.producers

    def test_reverse_rpq_direction(self, graph):
        # (a)<-/:KNOWS+/-(b) from a follows KNOWS edges backwards.
        plan = compiled(graph, "SELECT COUNT(*) FROM MATCH (a)<-/:KNOWS+/-(b) WHERE id(a)=3")
        path_stages = [s for s in plan.stages if s.kind is StageKind.PATH]
        hop = path_stages[0].hop
        from repro.graph import Direction

        assert hop.direction is Direction.IN


class TestCrossFilters:
    QUERY = (
        "PATH p AS (pa:Person)-[:KNOWS]->(pb:Person) "
        "SELECT COUNT(*) FROM MATCH (p1:Person)-/:p*/->(p2:Person) "
        "WHERE p1.age <= pa.age AND pb.age <= p2.age AND id(p1) = 0"
    )

    def test_deferred_cross_filter_creates_accumulator(self, graph):
        plan = compiled(graph, self.QUERY)
        spec = plan.rpq_specs()[0]
        assert len(spec.accumulator_inits) == 1
        slot, kind = spec.accumulator_inits[0]
        assert kind == "max"
        path_stages = [s for s in plan.stages if s.kind is StageKind.PATH]
        assert any(s.acc_updates for s in path_stages)

    def test_inline_cross_filter_attaches_to_path_stage(self, graph):
        plan = compiled(graph, self.QUERY)
        # p1.age <= pa.age can be evaluated at pa's path stage (p1 bound first).
        path_stages = [s for s in plan.stages if s.kind is StageKind.PATH]
        assert path_stages[0].filter is not None

    def test_deferred_check_attaches_at_exit(self, graph):
        plan = compiled(graph, self.QUERY)
        exit_stage = plan.stages[plan.rpq_specs()[0].exit_stage]
        assert exit_stage.filter is not None

    def test_unsupported_deferred_shape_rejected(self, graph):
        with pytest.raises(PlanningError):
            compiled(
                graph,
                "PATH p AS (pa)-[:KNOWS]->(pb) "
                "SELECT COUNT(*) FROM MATCH (p1)-/:p*/->(p2) "
                "WHERE pa.age <> p2.age",
            )


class TestProjectionsAndAggregates:
    def test_aggregate_marks_plan(self, graph):
        plan = compiled(graph, "SELECT COUNT(*) FROM MATCH (a:Person)")
        assert plan.has_aggregates
        assert plan.projections[0].aggregate == "count"

    def test_group_by_validation(self, graph):
        with pytest.raises(PlanningError):
            compiled(graph, "SELECT a.name, COUNT(*) FROM MATCH (a:Person)")

    def test_group_by_accepts_matching_key(self, graph):
        plan = compiled(
            graph, "SELECT a.name, COUNT(*) FROM MATCH (a:Person) GROUP BY a.name"
        )
        assert len(plan.group_by) == 1

    def test_order_by_resolves_to_select_item(self, graph):
        plan = compiled(
            graph,
            "SELECT a.name AS n, COUNT(*) FROM MATCH (a:Person) "
            "GROUP BY a.name ORDER BY COUNT(*) DESC, n",
        )
        assert plan.order_by == ((1, True), (0, False))

    def test_order_by_unknown_rejected(self, graph):
        with pytest.raises(PlanningError):
            compiled(graph, "SELECT a.name FROM MATCH (a:Person) ORDER BY a.age")

    def test_nested_aggregate_rejected(self, graph):
        with pytest.raises(PlanningError):
            compiled(graph, "SELECT COUNT(*) + 1 FROM MATCH (a:Person)")


class TestExplain:
    def test_explain_renders(self, graph):
        plan = compiled(
            graph,
            "PATH p AS (x)-[:KNOWS]->(y) "
            "SELECT COUNT(*) FROM MATCH (a:Person)-/:p{1,3}/->(b:Person) WHERE id(a)=0",
        )
        text = explain(plan)
        assert "rpq#0[1,3]" in text
        assert "control_entry=init" in text
        assert "OUTPUT" in text
