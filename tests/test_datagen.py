"""Tests for the LDBC-like generator and the benchmark workload queries."""

import pytest

from repro import EngineConfig, RPQdEngine
from repro.baselines import BftEngine, RecursiveEngine
from repro.datagen import (
    BENCHMARK_QUERIES,
    FIGURE3_HOPS,
    LdbcParams,
    generate_ldbc,
    mini_ldbc,
    reply_depth_query,
    schema,
)
from repro.graph import Direction


@pytest.fixture(scope="module")
def xs():
    return mini_ldbc("xs")


class TestGenerator:
    def test_deterministic(self):
        g1, i1 = mini_ldbc("xs", seed=5)
        g2, i2 = mini_ldbc("xs", seed=5)
        assert g1.num_vertices == g2.num_vertices
        assert g1.num_edges == g2.num_edges
        assert g1.edge_src == g2.edge_src
        assert i1.start_person == i2.start_person

    def test_different_seeds_differ(self):
        g1, _ = mini_ldbc("xs", seed=5)
        g2, _ = mini_ldbc("xs", seed=6)
        assert g1.edge_src != g2.edge_src

    def test_counts_consistent(self, xs):
        g, info = xs
        hist = g.label_histogram()
        assert hist[schema.PERSON] == info.counts["persons"]
        assert hist[schema.POST] == info.counts["posts"]
        assert info.counts["vertices"] == g.num_vertices

    def test_message_supertype(self, xs):
        g, _ = xs
        message = g.vertex_labels.id_of(schema.MESSAGE)
        post = g.vertex_labels.id_of(schema.POST)
        comment = g.vertex_labels.id_of(schema.COMMENT)
        n_posts = sum(1 for _ in g.vertices_with_label(post))
        n_comments = sum(1 for _ in g.vertices_with_label(comment))
        n_messages = sum(1 for _ in g.vertices_with_label(message))
        assert n_messages == n_posts + n_comments

    def test_reply_trees_are_forests(self, xs):
        # Every comment has exactly one REPLY_OF out-edge (a tree parent).
        g, _ = xs
        reply = g.edge_labels.id_of(schema.REPLY_OF)
        comment = g.vertex_labels.id_of(schema.COMMENT)
        for v in g.vertices_with_label(comment):
            out = [n for n, _ in g.neighbors(v, Direction.OUT, reply)]
            assert len(out) == 1

    def test_every_person_has_a_city(self, xs):
        g, _ = xs
        located = g.edge_labels.id_of(schema.LOCATED_IN)
        person = g.vertex_labels.id_of(schema.PERSON)
        for v in g.vertices_with_label(person):
            assert g.degree(v, Direction.OUT) >= 1
            assert any(True for _ in g.neighbors(v, Direction.OUT, located))

    def test_narrow_country_is_small(self, xs):
        g, info = xs
        # Persons located in the narrow country are a small minority.
        country_label = g.vertex_labels.id_of(schema.COUNTRY)
        narrow = next(
            v
            for v in g.vertices_with_label(country_label)
            if g.vprops.get("name", v) == info.narrow_country
        )
        part_of = g.edge_labels.id_of(schema.IS_PART_OF)
        located = g.edge_labels.id_of(schema.LOCATED_IN)
        persons_in_narrow = 0
        for city, _ in g.neighbors(narrow, Direction.IN, part_of):
            persons_in_narrow += sum(1 for _ in g.neighbors(city, Direction.IN, located))
        assert 0 < persons_in_narrow < info.counts["persons"] * 0.25

    def test_start_person_has_high_degree(self, xs):
        g, info = xs
        knows = g.edge_labels.id_of(schema.KNOWS)
        start_degree = sum(1 for _ in g.neighbors(info.start_person, Direction.BOTH, knows))
        assert start_degree >= 3

    def test_custom_params(self):
        g, info = generate_ldbc(LdbcParams(num_persons=50, num_forums=5, seed=1))
        assert info.counts["persons"] == 50

    def test_reply_depth_histogram_decays(self):
        g, info = mini_ldbc("s")
        eng = RPQdEngine(g, EngineConfig(num_machines=2))
        r = eng.execute(BENCHMARK_QUERIES["Q09"](info))
        table = r.stats.depth_table(0)
        matches = [row[1] for row in table]
        # Tail decays: the last depth has far fewer matches than the peak.
        assert max(matches) > 5 * matches[-1]


class TestWorkloads:
    def test_nine_queries(self):
        assert len(BENCHMARK_QUERIES) == 9
        assert [n for n in BENCHMARK_QUERIES if n.endswith("*")] == [
            "Q03*", "Q09*", "Q10*",
        ]

    @pytest.mark.parametrize("name", list(BENCHMARK_QUERIES))
    def test_query_parses_and_runs_everywhere(self, xs, name):
        g, info = xs
        query = BENCHMARK_QUERIES[name](info)
        rpqd = RPQdEngine(g, EngineConfig(num_machines=2)).execute(query)
        bft = BftEngine(g).execute(query)
        rec = RecursiveEngine(g).execute(query)
        assert rpqd.rows == bft.rows == rec.rows

    def test_reply_depth_query_quantifiers(self):
        assert "{0}" in reply_depth_query(0, 0)
        assert "{1,3}" in reply_depth_query(1, 3)

    def test_figure3_hops_cover_paper_axis(self):
        assert (0, 0) in FIGURE3_HOPS
        assert (3, 3) in FIGURE3_HOPS
        assert len(FIGURE3_HOPS) == 10

    def test_q10_results_nonempty(self, xs):
        g, info = xs
        r = RPQdEngine(g, EngineConfig(num_machines=2)).execute(
            BENCHMARK_QUERIES["Q10"](info)
        )
        assert r.scalar() > 0
