"""Tests for partitioners, the distributed graph view, and the loader."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    BlockPartitioner,
    Direction,
    DistributedGraph,
    GraphBuilder,
    HashPartitioner,
    load_graph,
    make_partitioner,
    save_graph,
)
from repro.graph.generators import random_graph


class TestPartitioners:
    def test_hash_owner_round_robin(self):
        p = HashPartitioner(10, 3)
        assert [p.owner(v) for v in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_hash_local_vertices_cover_all(self):
        p = HashPartitioner(11, 4)
        seen = sorted(v for m in range(4) for v in p.local_vertices(m))
        assert seen == list(range(11))

    def test_block_ranges_are_contiguous(self):
        p = BlockPartitioner(10, 3)
        assert list(p.local_vertices(0)) == [0, 1, 2, 3]
        assert list(p.local_vertices(1)) == [4, 5, 6, 7]
        assert list(p.local_vertices(2)) == [8, 9]

    def test_block_owner_matches_local_vertices(self):
        p = BlockPartitioner(17, 5)
        for m in range(5):
            for v in p.local_vertices(m):
                assert p.owner(v) == m

    def test_block_single_machine(self):
        p = BlockPartitioner(5, 1)
        assert list(p.local_vertices(0)) == [0, 1, 2, 3, 4]

    def test_factory(self):
        assert isinstance(make_partitioner("hash", 4, 2), HashPartitioner)
        assert isinstance(make_partitioner("block", 4, 2), BlockPartitioner)
        with pytest.raises(GraphError):
            make_partitioner("magic", 4, 2)

    def test_factory_cluster_needs_graph(self):
        with pytest.raises(GraphError):
            make_partitioner("cluster", 4, 2)


class TestClusterPartitioner:
    def test_covers_all_vertices(self):
        from repro.graph import ClusterPartitioner
        from repro.graph.generators import reply_forest

        g = reply_forest(10, 3, 4, seed=1)
        p = ClusterPartitioner(g, 3)
        seen = sorted(v for m in range(3) for v in p.local_vertices(m))
        assert seen == list(range(g.num_vertices))
        for m in range(3):
            for v in p.local_vertices(m):
                assert p.owner(v) == m

    def test_reduces_cut_edges_on_forests(self):
        from repro.graph import ClusterPartitioner
        from repro.graph.generators import reply_forest

        g = reply_forest(20, 3, 5, seed=2)

        def cut(p):
            return sum(
                1
                for e in range(g.num_edges)
                if p.owner(g.edge_src[e]) != p.owner(g.edge_dst[e])
            )

        cluster = ClusterPartitioner(g, 4)
        hashed = HashPartitioner(g.num_vertices, 4)
        assert cut(cluster) < cut(hashed) / 3

    def test_roughly_balanced(self):
        from repro.graph import ClusterPartitioner
        from repro.graph.generators import random_graph

        g = random_graph(100, 300, seed=5)
        p = ClusterPartitioner(g, 4)
        sizes = [len(p.local_vertices(m)) for m in range(4)]
        assert sum(sizes) == 100
        assert max(sizes) <= 2 * (100 // 4 + 1)

    def test_empty_graph(self):
        from repro.graph import ClusterPartitioner, GraphBuilder

        g = GraphBuilder().build()
        p = ClusterPartitioner(g, 2)
        assert list(p.local_vertices(0)) == []


class TestDistributedGraph:
    @pytest.fixture
    def dgraph(self):
        return DistributedGraph(random_graph(20, 60, seed=3), num_machines=4)

    def test_partitions_created(self, dgraph):
        assert len(dgraph.partitions) == 4

    def test_balance_sums_to_n(self, dgraph):
        assert sum(dgraph.balance()) == 20

    def test_local_read_allowed(self, dgraph):
        part = dgraph.partition(1)
        v = next(iter(part.local_vertices()))
        assert part.vertex_property(v, "idx") == v

    def test_remote_read_rejected(self, dgraph):
        part = dgraph.partition(0)
        remote = next(v for v in range(20) if dgraph.owner(v) != 0)
        with pytest.raises(GraphError):
            part.vertex_property(remote, "idx")
        with pytest.raises(GraphError):
            list(part.neighbor_runs(remote, Direction.OUT))

    def test_find_edge_anchored_locally(self, dgraph):
        g = dgraph.graph
        src = g.edge_src[0]
        dst = g.edge_dst[0]
        part = dgraph.partition(dgraph.owner(src))
        assert part.find_edge(src, dst, Direction.OUT) >= 0


class TestLoader:
    def test_round_trip(self, tmp_path):
        b = GraphBuilder()
        a = b.add_vertex("Person", name="Ana", age=33)
        p = b.add_vertex("Post", extra_labels=("Message",), content="x")
        b.add_edge(a, p, "LIKES", weight=2)
        g1 = b.build()

        path = tmp_path / "g.jsonl"
        save_graph(g1, path)
        g2 = load_graph(path)

        assert g2.num_vertices == g1.num_vertices
        assert g2.num_edges == g1.num_edges
        assert g2.vprops.get("name", 0) == "Ana"
        assert g2.eprops.get("weight", 0) == 2
        message = g2.vertex_labels.id_of("Message")
        assert g2.vertex_has_label(1, message)

    def test_bad_kind_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "hyperedge"}\n')
        with pytest.raises(GraphError):
            load_graph(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.jsonl"
        path.write_text('{"kind": "vertex", "label": "N"}\n\n')
        g = load_graph(path)
        assert g.num_vertices == 1
