"""Tests for the concurrent multi-query runtime (ClusterScheduler).

The load-bearing property: running queries concurrently perturbs only the
*schedule*, never the result sets — so every concurrent result must be
bit-identical to the same query executed solo, sanitizers included.
"""

import pytest

from repro import AdmissionError, EngineConfig, connect
from repro.errors import ConfigError
from repro.graph.generators import chain_graph, random_graph
from repro.runtime.multi import ClusterScheduler
from repro.runtime.network import ClusterNetwork

QUERIES = [
    "SELECT COUNT(*) FROM MATCH (a)-[:LINK]->(b)",
    "SELECT COUNT(*) FROM MATCH (a)-/:LINK+/->(b)",
    "SELECT COUNT(*) FROM MATCH (a)-/:LINK{1,3}/->(b)",
    "SELECT COUNT(*) FROM MATCH (a)-/:LINK{2,4}/->(b)",
]


def _graph(seed=11):
    return random_graph(50, 150, seed=seed)


class TestConcurrentEqualsSequential:
    @pytest.mark.parametrize("sanitize", [False, True])
    def test_results_bit_identical_to_solo(self, sanitize):
        session = connect(
            _graph(), num_machines=3, sanitize=sanitize,
            max_concurrent_queries=4,
        )
        solo = [session.execute(q).rows for q in QUERIES]
        handles = [session.submit(q) for q in QUERIES]
        session.drain()
        for handle, rows in zip(handles, solo):
            result = handle.result()
            assert result.rows == rows
            assert result.complete

    def test_concurrency_shares_idle_quantum(self):
        """Interleaving must beat back-to-back sequential makespan."""
        session = connect(_graph(), num_machines=3, max_concurrent_queries=4)
        sequential = sum(session.execute(q).stats.rounds for q in QUERIES)
        handles = [session.submit(q) for q in QUERIES]
        session.drain()
        assert all(h.result().complete for h in handles)
        assert session.cluster_rounds < sequential

    def test_repeated_concurrent_runs_are_deterministic(self):
        def one_run():
            session = connect(
                _graph(), num_machines=3, sanitize=True,
                max_concurrent_queries=4,
            )
            handles = [session.submit(q) for q in QUERIES]
            session.drain()
            return (
                [h.result().rows for h in handles],
                session.cluster_rounds,
            )

        first, second = one_run(), one_run()
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_per_query_stats_use_local_clock(self):
        """A late-submitted query's rounds count from its own admission."""
        session = connect(chain_graph(12), num_machines=2)
        solo_rounds = session.execute(
            "SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)"
        ).stats.rounds
        first = session.submit("SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)")
        first.result()
        second = session.submit("SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)")
        stats = second.result().stats
        # Admitted mid-makespan yet its own clock starts at admission; a
        # solo-equal workload on an otherwise idle cluster takes the same
        # virtual time (within the settle tail).
        assert stats.rounds <= solo_rounds + 4
        assert first.result().rows == second.result().rows


class TestAdmissionControl:
    def test_admission_error_past_queue_limit(self):
        session = connect(
            chain_graph(10), num_machines=2,
            max_concurrent_queries=1, admission_queue_limit=2,
        )
        q = "SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)"
        handles = [session.submit(q) for _ in range(3)]  # 1 active + 2 queued
        with pytest.raises(AdmissionError, match="admission queue full"):
            session.submit(q)
        session.drain()
        rows = [h.result().rows for h in handles]
        assert rows[0] == rows[1] == rows[2]

    def test_finish_frees_admission_slot(self):
        session = connect(
            chain_graph(10), num_machines=2,
            max_concurrent_queries=1, admission_queue_limit=1,
        )
        q = "SELECT COUNT(*) FROM MATCH (a)-[:NEXT]->(b)"
        first = session.submit(q)
        second = session.submit(q)
        first.result()
        # The queue drained into the freed slot, so there is room again.
        third = session.submit(q)
        session.drain()
        assert second.result().rows == third.result().rows

    def test_cancel_pending_frees_queue_slot(self):
        session = connect(
            chain_graph(10), num_machines=2,
            max_concurrent_queries=1, admission_queue_limit=1,
        )
        q = "SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)"
        session.submit(q)
        queued = session.submit(q)
        assert queued.cancel() is True
        replacement = session.submit(q)  # no AdmissionError
        session.drain()
        assert replacement.result().complete


class TestIsolation:
    def test_channels_are_private_per_query(self):
        network = ClusterNetwork(2, net_delay_rounds=1)
        network.open_channel(1, num_slots=1)
        with pytest.raises(AssertionError):
            network.open_channel(1, num_slots=1)
        network.open_channel(2, num_slots=1)
        assert network.channel(1) is not network.channel(2)

    def test_scheduler_rejects_mismatched_cluster_shape(self):
        session = connect(chain_graph(8), num_machines=2)
        scheduler = ClusterScheduler(session.dgraph, session.config)
        plan = session.compile("SELECT COUNT(*) FROM MATCH (a)-[:NEXT]->(b)")
        with pytest.raises(ConfigError, match="machines"):
            scheduler.submit(
                plan, lambda m: None,
                config=EngineConfig(num_machines=4),
            )
        with pytest.raises(ConfigError, match="net_delay_rounds"):
            scheduler.submit(
                plan, lambda m: None,
                config=session.config.with_(net_delay_rounds=3),
            )

    def test_solo_only_options_rejected(self):
        session = connect(chain_graph(8), num_machines=2)
        base = session.config
        with pytest.raises(ConfigError, match="schedule_seed"):
            session.submit(
                "SELECT COUNT(*) FROM MATCH (a)-[:NEXT]->(b)",
                config=base.with_(schedule_seed=1),
            )
        # recovery / reliable_transport used to be solo-only; now they ride
        # the concurrent path too.
        handle = session.submit(
            "SELECT COUNT(*) FROM MATCH (a)-[:NEXT]->(b)",
            config=base.with_(recovery=True, reliable_transport=True),
        )
        session.drain()
        assert handle.result().complete

    def test_per_query_fault_plan_must_match_cluster(self):
        """Chaos is cluster-level: a differing per-query plan is rejected,
        restating the session's own plan is fine."""
        from repro.faults import FaultPlan

        plan = FaultPlan(seed=3, drop_prob=0.02)
        session = connect(
            chain_graph(8), num_machines=2, faults=plan, sanitize=True
        )
        with pytest.raises(ConfigError, match="fault plan"):
            session.submit(
                "SELECT COUNT(*) FROM MATCH (a)-[:NEXT]->(b)",
                config=session.config.with_(faults=FaultPlan(seed=4)),
            )
        restated = session.submit(
            "SELECT COUNT(*) FROM MATCH (a)-[:NEXT]->(b)",
            config=session.config.with_(faults=plan),
        )
        session.drain()
        assert restated.result().complete

    def test_one_query_failure_spares_the_others(self):
        """A per-query round-cap breach must not take down its neighbours."""
        session = connect(_graph(), num_machines=3)
        doomed = session.submit(
            "SELECT COUNT(*) FROM MATCH (a)-/:LINK+/->(b)",
            config=session.config.with_(max_rounds=1),
        )
        healthy = session.submit("SELECT COUNT(*) FROM MATCH (a)-[:LINK]->(b)")
        session.drain()
        with pytest.raises(Exception, match="max_rounds"):
            doomed.result()
        assert healthy.result().complete
