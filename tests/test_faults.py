"""Tests for fault injection + reliable transport (repro.faults).

The headline invariant mirrors the schedule race sweep
(tests/test_analysis_races.py): with reliable transport on, any seeded
FaultPlan must reproduce the fault-free result set AND the fault-free
``stats.depth_table()`` — exactly-once delivery means the protocol does
identical logical work no matter what the network underneath did.
"""

import json

import pytest

from repro import EngineConfig, RPQdEngine
from repro.errors import ConfigError, SanitizerViolation
from repro.faults import (
    FaultInjector,
    FaultPlan,
    MachineCrash,
    MachineStall,
    run_chaos_sweep,
    seeded_sweep,
)
from repro.graph.generators import random_graph, reply_forest
from repro.runtime.message import AckMessage, Batch, DoneMessage
from repro.runtime.network import SimulatedNetwork

CONFIG = EngineConfig(num_machines=4, buffers_per_machine=2048)
QUERY = "SELECT COUNT(*) FROM MATCH (a)-/:E{1,3}/->(b)"


@pytest.fixture(scope="module")
def graph():
    return random_graph(60, 180, seed=11, edge_label="E")


# ----------------------------------------------------------------------
# FaultPlan: validation + JSON round trip
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_defaults_are_fault_free(self):
        plan = FaultPlan()
        assert not plan.has_message_faults
        assert not plan.has_machine_faults

    @pytest.mark.parametrize("field", ["drop_prob", "dup_prob", "delay_prob", "reorder_prob"])
    def test_rejects_bad_probability(self, field):
        with pytest.raises(ConfigError):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ConfigError):
            FaultPlan(**{field: -0.1})

    def test_rejects_unknown_kinds(self):
        with pytest.raises(ConfigError):
            FaultPlan(kinds=("batch", "gossip"))

    def test_event_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(stalls=(MachineStall(machine=-1, start_round=2, duration=3),))
        with pytest.raises(ConfigError):
            FaultPlan(crashes=(MachineCrash(machine=0, round=5, recover_round=5),))

    def test_validate_for_cluster(self):
        plan = FaultPlan(stalls=(MachineStall(machine=7, start_round=2, duration=3),))
        with pytest.raises(ConfigError):
            plan.validate_for(4)
        everyone = FaultPlan(
            crashes=tuple(MachineCrash(machine=m, round=2) for m in range(2))
        )
        with pytest.raises(ConfigError):
            everyone.validate_for(2)

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=5,
            drop_prob=0.1,
            dup_prob=0.05,
            stalls=(MachineStall(machine=1, start_round=4, duration=6),),
            crashes=(MachineCrash(machine=2, round=9, recover_round=15),),
        )
        path = tmp_path / "plan.json"
        plan.to_file(path)
        assert FaultPlan.from_file(path) == plan

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_dict({"seed": 1, "chaos_level": 11})
        with pytest.raises(ConfigError):
            FaultPlan.from_json("not json")

    def test_seeded_sweep_is_deterministic(self):
        a = seeded_sweep(3, base_seed=9)
        b = seeded_sweep(3, base_seed=9)
        assert a == b
        assert [p.seed for p in a] == [9, 10, 11]
        assert all(p.stalls and p.crashes for p in a)
        assert not any(p.permanent_crashes() for p in a)


# ----------------------------------------------------------------------
# EngineConfig wiring
# ----------------------------------------------------------------------
class TestConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.faults is None
        assert config.reliable_transport is None
        assert config.transport_enabled is False
        assert config.status_interval == 4
        assert config.stall_limit == 400

    def test_transport_auto_on_with_faults(self):
        config = EngineConfig(faults=FaultPlan(drop_prob=0.1))
        assert config.transport_enabled is True
        assert EngineConfig(faults=FaultPlan(), reliable_transport=False).transport_enabled is False
        assert EngineConfig(reliable_transport=True).transport_enabled is True

    def test_rejects_non_plan_faults(self):
        with pytest.raises(ConfigError):
            EngineConfig(faults={"drop_prob": 0.5})

    def test_faults_validated_against_cluster(self):
        plan = FaultPlan(stalls=(MachineStall(machine=9, start_round=2, duration=2),))
        with pytest.raises(ConfigError):
            EngineConfig(num_machines=4, faults=plan)

    def test_status_interval_and_stall_limit_validated(self):
        assert EngineConfig(status_interval=2, stall_limit=10).status_interval == 2
        with pytest.raises(ConfigError):
            EngineConfig(status_interval=0)
        with pytest.raises(ConfigError):
            EngineConfig(status_interval=8, stall_limit=10)

    def test_retransmit_timeout_validated(self):
        assert EngineConfig(retransmit_timeout_rounds=6).retransmit_timeout_rounds == 6
        with pytest.raises(ConfigError):
            EngineConfig(retransmit_timeout_rounds=0)

    def test_scheduler_constants_still_exported(self):
        from repro.runtime import STATUS_INTERVAL
        from repro.runtime.scheduler import STALL_LIMIT

        assert EngineConfig().status_interval == STATUS_INTERVAL
        assert EngineConfig().stall_limit == STALL_LIMIT

    def test_configurable_heartbeat_changes_behaviour(self, graph):
        fast = RPQdEngine(graph, CONFIG.with_(status_interval=2)).execute(QUERY)
        slow = RPQdEngine(graph, CONFIG.with_(status_interval=8)).execute(QUERY)
        assert fast.scalar() == slow.scalar()
        # More frequent heartbeats conclude sooner (rounds include the
        # detection tail), never later.
        assert fast.stats.rounds <= slow.stats.rounds


# ----------------------------------------------------------------------
# Network unit tests: accounting fix + transport mechanics
# ----------------------------------------------------------------------
def _batch(src=0, dst=1, n=1):
    batch = Batch(src_machine=src, dst_machine=dst, target_stage=1, depth=1)
    for i in range(n):
        batch.add(i, [i])
    return batch


class TestAccountingFix:
    def test_duplicate_fn_copies_are_counted(self):
        """The satellite bug: duplicate_fn deliveries missing from totals."""
        net = SimulatedNetwork(2, net_delay_rounds=1)
        net.duplicate_fn = lambda m: True
        batch = _batch()
        net.send(batch, now_round=1)
        assert net.total_messages == 2
        assert net.total_bytes == 2 * batch.modelled_bytes(0)
        # Both copies are really delivered.
        assert len(net.drain(1, now_round=3)) == 2

    def test_no_duplicate_no_change(self):
        net = SimulatedNetwork(2, net_delay_rounds=1)
        batch = _batch()
        net.send(batch, now_round=1)
        assert net.total_messages == 1
        assert net.total_bytes == batch.modelled_bytes(0)

    def test_retransmissions_are_counted(self):
        net = SimulatedNetwork(2, net_delay_rounds=1, reliable=True)
        net.send(_batch(), now_round=1)
        before = net.total_messages
        net.tick(now_round=100)  # deadline long past
        assert net.retransmits == 1
        assert net.total_messages == before + 1


class TestReliableTransport:
    def test_sequenced_and_acked(self):
        net = SimulatedNetwork(2, net_delay_rounds=1, reliable=True)
        b0, b1 = _batch(), _batch()
        net.send(b0, now_round=1)
        net.send(b1, now_round=1)
        assert (b0.tseq, b1.tseq) == (0, 1)
        assert len(net.drain(1, now_round=2)) == 2
        assert net.acks_sent == 2
        assert net.undelivered_work() == 0
        # ACKs come home and retire the retransmit state.
        assert net.drain(0, now_round=3) == []  # acks consumed internally
        assert net.acks_received == 2
        assert net._outstanding == {}

    def test_duplicate_frame_suppressed(self):
        net = SimulatedNetwork(2, net_delay_rounds=1, reliable=True)
        net.duplicate_fn = lambda m: True
        net.send(_batch(), now_round=1)
        delivered = net.drain(1, now_round=3)
        assert len(delivered) == 1
        assert net.dup_suppressed == 1
        assert net.acks_sent == 2  # every copy re-acked (refreshes lost acks)

    def test_retransmit_recovers_lost_queue(self):
        net = SimulatedNetwork(2, net_delay_rounds=1, reliable=True)
        net.send(_batch(), now_round=1)
        assert net.lose_queue(1) == 1  # crash: RX buffer wiped
        assert net.drain(1, now_round=2) == []
        assert net.undelivered_work() == 1
        net.tick(now_round=50)
        assert len(net.drain(1, now_round=52)) == 1
        assert net.undelivered_work() == 0

    def test_pending_kinds_ignores_acks(self):
        net = SimulatedNetwork(2, net_delay_rounds=1, reliable=True)
        net.send(_batch(), now_round=1)
        net.drain(1, now_round=2)  # queues the ack
        assert net.pending_kinds() == {"batch": 0, "done": 0, "status": 0}
        assert net.pending() == 1  # the ack itself is in flight

    def test_ack_messages_never_reach_machines(self):
        net = SimulatedNetwork(2, net_delay_rounds=1, reliable=True)
        net.send(DoneMessage(src_machine=0, dst_machine=1), now_round=1)
        net.drain(1, now_round=2)
        for r in range(3, 8):
            assert not any(
                isinstance(m, AckMessage) for m in net.drain(0, r) + net.drain(1, r)
            )

    def test_sanitizer_catches_double_delivery(self):
        from repro.analysis.sanitizer import RuntimeSanitizer

        san = RuntimeSanitizer()
        san.on_transport_deliver(0, 1, 7)
        with pytest.raises(SanitizerViolation):
            san.on_transport_deliver(0, 1, 7)


class TestInjector:
    def test_deterministic_verdicts(self):
        plan = FaultPlan(seed=3, drop_prob=0.3, dup_prob=0.3, delay_prob=0.3)
        runs = []
        for _ in range(2):
            injector = FaultInjector(plan, num_machines=2)
            runs.append([injector.on_transmit(_batch(), r) for r in range(50)])
        assert runs[0] == runs[1]
        assert any(v != (False, 0, False, False) for v in runs[0])

    def test_kind_filter(self):
        plan = FaultPlan(seed=3, drop_prob=1.0, kinds=("status",))
        injector = FaultInjector(plan, num_machines=2)
        assert injector.on_transmit(_batch(), 1) == (False, 0, False, False)

    def test_machine_windows(self):
        plan = FaultPlan(
            stalls=(MachineStall(machine=0, start_round=5, duration=3),),
            crashes=(MachineCrash(machine=1, round=10, recover_round=12),),
        )
        injector = FaultInjector(plan, num_machines=2)
        assert injector.machine_up(0, 4) and not injector.machine_up(0, 5)
        assert not injector.machine_up(0, 7) and injector.machine_up(0, 8)
        assert injector.begin_round(10) == [1]
        assert injector.transient_down(10) == (1,)
        assert injector.permanent_down(10) == ()


# ----------------------------------------------------------------------
# Fault-free runs are untouched (acceptance criterion)
# ----------------------------------------------------------------------
class TestFaultFreeUnchanged:
    def test_no_transport_state_without_faults(self, graph):
        result = RPQdEngine(graph, CONFIG).execute(QUERY)
        assert result.complete
        assert result.stats.transport is None
        assert result.stats.fault_events is None
        assert result.stats.partial is False
        assert all(m.stalled_rounds == 0 for m in result.stats.per_machine)

    def test_reliable_no_fault_run_is_equivalent(self, graph):
        """Transport on + zero faults: same rows, same virtual makespan."""
        engine = RPQdEngine(graph, CONFIG)
        base = engine.execute(QUERY)
        reliable = engine.execute(QUERY, config=CONFIG.with_(reliable_transport=True))
        assert reliable.scalar() == base.scalar()
        assert reliable.stats.virtual_time == base.stats.virtual_time
        assert tuple(reliable.stats.depth_table()) == tuple(base.stats.depth_table())
        assert reliable.stats.transport["retransmits"] == 0
        assert reliable.stats.transport["dup_suppressed"] == 0

    def test_fault_free_traces_byte_identical(self, graph, tmp_path):
        """faults=None runs are deterministic down to the exported bytes."""
        from repro.obs import jsonl_lines

        blobs = []
        for i in range(2):
            engine = RPQdEngine(graph, CONFIG.with_(faults=None, observe=True))
            result = engine.execute(QUERY)
            blobs.append("\n".join(jsonl_lines(result.obs)))
        assert blobs[0] == blobs[1]
        assert "fault." not in blobs[0]
        assert "net.retx" not in blobs[0]


# ----------------------------------------------------------------------
# Chaos invariance sweep (tentpole acceptance)
# ----------------------------------------------------------------------
class TestChaosInvariance:
    def test_sweep_reproduces_fault_free_results_and_depths(self):
        """Full depth_table invariance on a tree-shaped expansion (Q09's
        shape): with exactly-once delivery the per-depth matches,
        eliminations, and duplications are identical under any plan."""
        forest = reply_forest(num_roots=8, branching=3, depth=4, seed=5)
        plans = seeded_sweep(5, base_seed=21, horizon=80)
        reports = run_chaos_sweep(
            forest,
            ["SELECT COUNT(*) FROM MATCH (a)-/:REPLY_OF+/->(b)"],
            plans,
            config=CONFIG,
        )
        (report,) = reports
        assert report.ok, report.mismatches
        assert report.total_faults > 0
        assert all(run.complete for run in report.runs)
        assert all(run.rows_match and run.depths_match for run in report.runs)
        assert "ok" in report.summary()

    def test_sweep_rows_invariant_on_cyclic_graph(self, graph):
        """On cyclic graphs the *rows* are still exactly invariant; the
        eliminated/duplicated accounting legitimately depends on arrival
        order (same-depth index races), so depth comparison is opt-out —
        exactly like the schedule race sweep, which also compares rows."""
        plans = seeded_sweep(4, base_seed=21, horizon=80)
        reports = run_chaos_sweep(
            graph,
            [QUERY, "SELECT COUNT(*) FROM MATCH (a)-[:E]->(b)"],
            plans,
            config=CONFIG,
            compare_depths=False,
        )
        for report in reports:
            assert report.ok, report.mismatches
            assert all(run.rows_match for run in report.runs)

    def test_chaos_run_is_deterministic(self, graph):
        plan = FaultPlan(seed=13, drop_prob=0.1, dup_prob=0.1, delay_prob=0.1)
        engine = RPQdEngine(graph, CONFIG)
        runs = [engine.execute(QUERY, config=CONFIG.with_(faults=plan)) for _ in range(2)]
        assert runs[0].scalar() == runs[1].scalar()
        assert runs[0].stats.rounds == runs[1].stats.rounds
        assert runs[0].stats.fault_events == runs[1].stats.fault_events
        assert runs[0].stats.transport == runs[1].stats.transport

    def test_sanitized_chaos_run(self, graph):
        """The protocol sanitizer holds under loss + dedup + retransmit."""
        plan = FaultPlan(seed=5, drop_prob=0.15, dup_prob=0.1, delay_prob=0.1)
        result = RPQdEngine(graph, CONFIG.with_(sanitize=True, faults=plan)).execute(QUERY)
        assert result.complete
        assert result.stats.transport["retransmits"] > 0

    def test_stall_and_crash_recovery(self, graph):
        plan = FaultPlan(
            seed=8,
            drop_prob=0.05,
            stalls=(MachineStall(machine=1, start_round=3, duration=8),),
            crashes=(MachineCrash(machine=2, round=6, recover_round=14),),
        )
        engine = RPQdEngine(graph, CONFIG)
        base = engine.execute(QUERY)
        chaos = engine.execute(QUERY, config=CONFIG.with_(faults=plan))
        assert chaos.scalar() == base.scalar()
        assert chaos.complete
        stalled = [m.stalled_rounds for m in chaos.stats.per_machine]
        assert stalled[1] > 0 and stalled[2] > 0
        assert chaos.stats.fault_events.get("crash") == 1


# ----------------------------------------------------------------------
# Partial results when a machine stays down
# ----------------------------------------------------------------------
class TestPartialResults:
    def test_permanent_crash_flags_incomplete(self, graph):
        plan = FaultPlan(seed=2, crashes=(MachineCrash(machine=1, round=4),))
        config = CONFIG.with_(faults=plan, stall_limit=30)
        engine = RPQdEngine(graph, config)
        base = engine.execute(QUERY, config=CONFIG)
        partial = engine.execute(QUERY, config=config)
        assert partial.complete is False
        assert partial.result_set.complete is False
        assert partial.stats.partial is True
        assert partial.stats.down_machines == (1,)
        assert "complete=False" in repr(partial.result_set)
        # Survivors' rows are a lower bound on the true answer.
        assert partial.scalar() <= base.scalar()
        summary = partial.stats.summary()
        assert summary["partial"] is True
        assert summary["down_machines"] == [1]

    def test_transient_outage_is_not_partial(self, graph):
        plan = FaultPlan(
            seed=2, crashes=(MachineCrash(machine=1, round=4, recover_round=40),)
        )
        result = RPQdEngine(graph, CONFIG.with_(faults=plan, stall_limit=30)).execute(QUERY)
        assert result.complete


# ----------------------------------------------------------------------
# Obs integration: fault events ride the bus
# ----------------------------------------------------------------------
class TestObsIntegration:
    def test_fault_and_retx_events_recorded(self, graph):
        plan = FaultPlan(seed=4, drop_prob=0.15, dup_prob=0.1)
        result = RPQdEngine(
            graph, CONFIG.with_(faults=plan, observe=True)
        ).execute(QUERY)
        result.obs.finish()
        names = {e.get("name") for e in result.obs.events}
        assert "fault.drop" in names
        assert "net.retx" in names
        summaries = result.obs.metrics.summaries()
        assert "repro_fault_injected_total" in summaries
        assert "repro_net_retransmits_total" in summaries

    def test_trace_summary_reports_faults(self, graph, tmp_path):
        from repro.obs import summarize_trace, to_chrome_trace, validate_chrome_trace

        plan = FaultPlan(seed=4, drop_prob=0.1)
        result = RPQdEngine(
            graph, CONFIG.with_(faults=plan, observe=True)
        ).execute(QUERY)
        trace = to_chrome_trace(result.obs)
        assert validate_chrome_trace(trace) == []
        text = summarize_trace(trace)
        assert "faults injected" in text
        assert "retransmissions" in text


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_query_with_faults_file(self, graph, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.loader import save_graph

        gpath = tmp_path / "g.jsonl"
        save_graph(graph, str(gpath))
        plan_path = tmp_path / "plan.json"
        FaultPlan(seed=6, drop_prob=0.1, dup_prob=0.05).to_file(plan_path)
        rc = main(
            [
                "query",
                str(gpath),
                "SELECT COUNT(*) FROM MATCH (a)-[:E]->(b)",
                "--faults",
                str(plan_path),
                "--stats",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "transport" in captured.err
        assert "fault_events" in captured.err

    def test_chaos_subcommand(self, capsys):
        from repro.cli import main

        rc = main(["chaos", "--scale", "xs", "--plans", "2", "--queries", "Q09"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "chaos sweep: ok" in captured.out

    def test_chaos_subcommand_json(self, capsys):
        from repro.cli import main

        rc = main(
            ["chaos", "--scale", "xs", "--plans", "1", "--queries", "Q09", "--json"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        payload = json.loads(captured.out.split("-- chaos sweep")[0])
        assert payload["results"][0]["ok"] is True
        assert payload["results"][0]["makespan_inflation"]

    def test_chaos_rejects_unknown_query(self, capsys):
        from repro.cli import main

        rc = main(["chaos", "--scale", "xs", "--queries", "Q99"])
        assert rc == 2
