"""Integration tests for complex query shapes that combine multiple
engine features: non-linear patterns around RPQs, multi-segment chains,
aggregation pipelines, and configuration extremes."""

import pytest

from repro import EngineConfig, GraphBuilder, RPQdEngine
from repro.baselines import BftEngine, RecursiveEngine
from repro.datagen import mini_ldbc
from repro.graph.generators import chain_graph, random_graph


def agree(graph, query, machines=(1, 3)):
    values = set()
    for m in machines:
        values.add(
            RPQdEngine(graph, EngineConfig(num_machines=m)).execute(query).rows and
            tuple(RPQdEngine(graph, EngineConfig(num_machines=m)).execute(query).rows[0])
        )
    bft = BftEngine(graph).execute(query).rows
    rec = RecursiveEngine(graph).execute(query).rows
    values.add(tuple(bft[0]) if bft else None)
    values.add(tuple(rec[0]) if rec else None)
    assert len(values) == 1, values
    return values.pop()


class TestBranchAfterRpq:
    @pytest.fixture(scope="class")
    def graph(self):
        # a -> chain -> b ; a also has LIKES edges to posts.
        b = GraphBuilder()
        people = [b.add_vertex("Person", idx=i) for i in range(5)]
        for i in range(4):
            b.add_edge(people[i], people[i + 1], "KNOWS")
        posts = [b.add_vertex("Post", idx=100 + i) for i in range(3)]
        for p in posts:
            b.add_edge(people[0], p, "LIKES")
        return b.build()

    def test_inspect_back_to_pre_rpq_variable(self, graph):
        # After the RPQ binds b, the pattern branches from a again.
        q = (
            "SELECT COUNT(*) FROM MATCH (a:Person)-/:KNOWS+/->(b:Person), "
            "MATCH (a)-[:LIKES]->(p:Post) WHERE id(a) = 0"
        )
        # b in {1,2,3,4} x p in 3 posts = 12
        assert agree(graph, q) == (12,)

    def test_branch_from_rpq_destination(self, graph):
        q = (
            "SELECT COUNT(*) FROM MATCH (a:Person)-/:KNOWS{1,2}/->(b:Person)"
            "-[:KNOWS]->(c:Person) WHERE id(a) = 0"
        )
        # b in {1,2}: b=1 -> c=2; b=2 -> c=3 => 2
        assert agree(graph, q) == (2,)


class TestRpqBetweenBoundVertices:
    def test_verification_semantics(self):
        b = GraphBuilder()
        for _ in range(5):
            b.add_vertex("N")
        for s, d in [(0, 1), (0, 2), (2, 1), (2, 3), (3, 4)]:
            b.add_edge(s, d, "E")
        g = b.build()
        # Direct edge AND a 2..3-hop walk between the same endpoints:
        # (0,1): direct + 0->2->1 two-hop => counts.
        # (2,3) direct: walks 2..3 hops from 2 to 3? 2->1(dead), 2->3->4;
        #   no return to 3 => no.
        q = "SELECT COUNT(*) FROM MATCH (a)-[:E]->(b), MATCH (a)-/:E{2,3}/->(b)"
        assert agree(g, q) == (1,)


class TestThreeSegments:
    def test_triple_rpq_chain(self):
        g = chain_graph(8)
        q = (
            "SELECT COUNT(*) FROM MATCH "
            "(a)-/:NEXT+/->(b)-/:NEXT+/->(c)-/:NEXT+/->(d)"
        )
        # Choose 4 distinct ascending positions from 8: C(8,4) = 70.
        assert agree(g, q) == (70,)

    def test_mixed_segments_and_edges(self):
        g = chain_graph(7)
        q = (
            "SELECT COUNT(*) FROM MATCH "
            "(a)-/:NEXT{1,2}/->(b)-[:NEXT]->(c)-/:NEXT*/->(d)"
        )
        # a<b (by 1..2), c=b+1, d>=c. Count over chain 0..6.
        expected = 0
        for a in range(7):
            for step in (1, 2):
                b_v = a + step
                c = b_v + 1
                if c <= 6:
                    expected += 6 - c + 1
        assert agree(g, q) == (expected,)


class TestAggregationPipelines:
    @pytest.fixture(scope="class")
    def ldbc(self):
        return mini_ldbc("xs")

    def test_group_having_order_limit_offset(self, ldbc):
        graph, _info = ldbc
        q = (
            "SELECT p.firstName AS name, COUNT(*) "
            "FROM MATCH (p:Person)-[:KNOWS]-(q:Person) "
            "GROUP BY p.firstName HAVING COUNT(*) >= 2 "
            "ORDER BY COUNT(*) DESC, name LIMIT 5 OFFSET 2"
        )
        rpqd = RPQdEngine(graph, EngineConfig(num_machines=3)).execute(q)
        bft = BftEngine(graph).execute(q)
        assert rpqd.rows == bft.rows
        assert len(rpqd.rows) == 5
        counts = [row[1] for row in rpqd.rows]
        assert counts == sorted(counts, reverse=True)

    def test_aggregate_over_rpq_with_distinct(self, ldbc):
        graph, info = ldbc
        q = (
            "SELECT COUNT(DISTINCT expert.firstName) "
            "FROM MATCH (p:Person)-/:KNOWS{1,2}/-(expert:Person) "
            f"WHERE id(p) = {info.start_person}"
        )
        rpqd = RPQdEngine(graph, EngineConfig(num_machines=2)).execute(q)
        assert rpqd.scalar() == BftEngine(graph).execute(q).scalar()


class TestConfigurationExtremes:
    QUERY = "SELECT COUNT(*) FROM MATCH (a)-/:LINK{1,3}/->(b)"

    @pytest.fixture(scope="class")
    def graph(self):
        return random_graph(30, 90, seed=31)

    @pytest.fixture(scope="class")
    def expected(self, graph):
        return BftEngine(graph).execute(self.QUERY).scalar()

    def test_single_worker_per_machine(self, graph, expected):
        r = RPQdEngine(
            graph, EngineConfig(num_machines=4, workers_per_machine=1)
        ).execute(self.QUERY)
        assert r.scalar() == expected

    def test_many_workers(self, graph, expected):
        r = RPQdEngine(
            graph, EngineConfig(num_machines=2, workers_per_machine=16)
        ).execute(self.QUERY)
        assert r.scalar() == expected

    def test_zero_network_delay(self, graph, expected):
        r = RPQdEngine(
            graph, EngineConfig(num_machines=4, net_delay_rounds=0)
        ).execute(self.QUERY)
        assert r.scalar() == expected

    def test_slow_network(self, graph, expected):
        fast = RPQdEngine(
            graph, EngineConfig(num_machines=4, net_delay_rounds=0)
        ).execute(self.QUERY)
        slow = RPQdEngine(
            graph, EngineConfig(num_machines=4, net_delay_rounds=8)
        ).execute(self.QUERY)
        assert slow.scalar() == expected
        assert slow.virtual_time > fast.virtual_time

    def test_tiny_quantum(self, graph, expected):
        r = RPQdEngine(
            graph, EngineConfig(num_machines=2, quantum=10.0)
        ).execute(self.QUERY)
        assert r.scalar() == expected

    def test_sixteen_machines(self, graph, expected):
        r = RPQdEngine(graph, EngineConfig(num_machines=16)).execute(self.QUERY)
        assert r.scalar() == expected
