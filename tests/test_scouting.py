"""Tests for scouting-based planning (sampled selectivity estimation)."""

import pytest

from repro import EngineConfig, GraphBuilder, RPQdEngine
from repro.pgql import parse
from repro.plan.compiler import PlanCompiler
from repro.plan.planner import Planner
from repro.plan.scouting import Scout


@pytest.fixture(scope="module")
def skewed_graph():
    """Everyone is an adult; only three people are seniors (age > 76).

    Static heuristics rank the two range filters equally and fall back to
    the alphabetical tie-break; scouting measures the real skew.
    """
    b = GraphBuilder()
    people = []
    for i in range(60):
        age = 80 if i < 3 else 30
        people.append(b.add_vertex("Person", age=age, idx=i))
    for i in range(59):
        b.add_edge(people[i], people[i + 1], "KNOWS")
    return b.build()


QUERY = (
    "SELECT COUNT(*) FROM MATCH (a:Person)-/:KNOWS{1,2}/-(z:Person) "
    "WHERE z.age > 76 AND a.age >= 18"
)


class TestScout:
    def test_selectivity_measures_skew(self, skewed_graph):
        scout = Scout(skewed_graph, samples=60)
        planner = Planner(parse(QUERY), scout=scout)
        pv_z = planner.pattern_graph.vertices["z"]
        pv_a = planner.pattern_graph.vertices["a"]
        assert scout.selectivity(pv_z) < 0.2
        assert scout.selectivity(pv_a) > 0.8

    def test_selectivity_never_zero(self, skewed_graph):
        scout = Scout(skewed_graph, samples=16)
        planner = Planner(
            parse("SELECT COUNT(*) FROM MATCH (a:Person) WHERE a.age = 999"),
            scout=scout,
        )
        pv = planner.pattern_graph.vertices["a"]
        assert scout.selectivity(pv) > 0.0

    def test_probe_count_bounded(self, skewed_graph):
        scout = Scout(skewed_graph, samples=16)
        planner = Planner(parse(QUERY), scout=scout)
        planner.plan()
        # At most one pass over the sample per distinct variable.
        assert scout.probes <= 16 * len(planner.pattern_graph.vertices)

    def test_deterministic(self, skewed_graph):
        s1 = Scout(skewed_graph, samples=20)
        s2 = Scout(skewed_graph, samples=20)
        planner = Planner(parse(QUERY))
        pv = planner.pattern_graph.vertices["z"]
        assert s1.selectivity(pv) == s2.selectivity(pv)


class TestScoutedPlans:
    def test_static_heuristics_tie_break_alphabetically(self, skewed_graph):
        ops = Planner(parse(QUERY)).plan().ops
        assert ops[0].var == "a"  # the unselective side

    def test_scouting_picks_the_rare_side(self, skewed_graph):
        compiler = PlanCompiler(parse(QUERY), skewed_graph, scouting=True)
        assert compiler.logical.ops[0].var == "z"

    def test_scouted_plan_does_less_work(self, skewed_graph):
        static = RPQdEngine(skewed_graph, EngineConfig(num_machines=2)).execute(QUERY)
        scouted = RPQdEngine(
            skewed_graph, EngineConfig(num_machines=2, scouting=True)
        ).execute(QUERY)
        assert static.scalar() == scouted.scalar()
        assert (
            scouted.stats.edges_traversed < static.stats.edges_traversed
        )

    def test_single_match_still_wins(self, skewed_graph):
        query = QUERY + " AND id(a) = 5"
        compiler = PlanCompiler(parse(query), skewed_graph, scouting=True)
        assert compiler.logical.ops[0].var == "a"
