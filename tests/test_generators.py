"""Tests for the simple topology generators used by tests and benches."""

import pytest

from repro.graph import Direction
from repro.graph.generators import (
    chain_graph,
    complete_graph,
    cycle_graph,
    random_graph,
    reply_forest,
    star_graph,
    two_label_graph,
)


class TestReplyForest:
    def test_forest_structure(self):
        g = reply_forest(12, 3, 5, seed=4)
        post = g.vertex_labels.id_of("Post")
        comment = g.vertex_labels.id_of("Comment")
        reply = g.edge_labels.id_of("REPLY_OF")
        posts = list(g.vertices_with_label(post))
        assert len(posts) == 12
        # Posts have no outgoing REPLY_OF; every comment exactly one.
        for v in posts:
            assert not list(g.neighbors(v, Direction.OUT, reply))
        for v in g.vertices_with_label(comment):
            assert len(list(g.neighbors(v, Direction.OUT, reply))) == 1

    def test_edges_equal_comments(self):
        g = reply_forest(10, 2, 4, seed=9)
        comment = g.vertex_labels.id_of("Comment")
        n_comments = sum(1 for _ in g.vertices_with_label(comment))
        assert g.num_edges == n_comments

    def test_depth_bounded(self):
        g = reply_forest(5, 4, 3, seed=1)
        reply = g.edge_labels.id_of("REPLY_OF")
        # Walk up from every comment: at most `depth` hops to a post.
        post = g.vertex_labels.id_of("Post")
        for v in g.vertices():
            hops = 0
            current = v
            while not g.vertex_has_label(current, post):
                current = next(n for n, _ in g.neighbors(current, Direction.OUT, reply))
                hops += 1
                assert hops <= 3

    def test_deterministic(self):
        a = reply_forest(8, 3, 4, seed=7)
        b = reply_forest(8, 3, 4, seed=7)
        assert a.edge_src == b.edge_src
        assert a.edge_dst == b.edge_dst

    def test_message_supertype_on_all(self):
        g = reply_forest(5, 2, 3, seed=2)
        message = g.vertex_labels.id_of("Message")
        assert all(g.vertex_has_label(v, message) for v in g.vertices())


class TestSimpleShapes:
    def test_star(self):
        g = star_graph(7)
        assert g.num_vertices == 8
        assert g.degree(0, Direction.OUT) == 7
        assert all(g.degree(v, Direction.OUT) == 0 for v in range(1, 8))

    def test_complete_has_no_self_loops(self):
        g = complete_graph(6)
        for e in range(g.num_edges):
            assert g.edge_src[e] != g.edge_dst[e]

    def test_cycle_strongly_connected(self):
        g = cycle_graph(5)
        # following NEXT 5 times returns to start
        v = 0
        for _ in range(5):
            v = next(n for n, _ in g.neighbors(v, Direction.OUT))
        assert v == 0

    def test_random_graph_counts(self):
        g = random_graph(15, 44, seed=3)
        assert g.num_vertices == 15
        assert g.num_edges == 44

    def test_two_label_graph_has_both_label_sets(self):
        g = two_label_graph(40, seed=8)
        assert g.vertex_labels.id_of("A") is not None
        assert g.vertex_labels.id_of("B") is not None
        assert g.edge_labels.id_of("X") is not None
        assert g.edge_labels.id_of("Y") is not None

    def test_chain_idx_property(self):
        g = chain_graph(4)
        assert [g.vprops.get("idx", v) for v in range(4)] == [0, 1, 2, 3]
