"""Scheduler edge cases, failure injection, and runtime robustness."""

import pytest

from repro import EngineConfig, ExecutionError, RPQdEngine
from repro.engine.result import MachineSink
from repro.graph import DistributedGraph
from repro.graph.generators import chain_graph, random_graph, star_graph
from repro.runtime.message import Batch, DoneMessage, StatusMessage
from repro.runtime.scheduler import QueryExecution


def make_execution(graph, query, config):
    engine = RPQdEngine(graph, config)
    plan = engine.compile(query)
    sinks = [MachineSink(plan) for _ in range(config.num_machines)]
    return QueryExecution(engine.dgraph, plan, config, lambda m: sinks[m]), sinks, plan


class TestSchedulerGuards:
    def test_max_rounds_exceeded_raises(self):
        g = random_graph(30, 90, seed=1)
        config = EngineConfig(num_machines=2, max_rounds=3)
        ex, _sinks, _plan = make_execution(
            g, "SELECT COUNT(*) FROM MATCH (a)-/:LINK{1,3}/->(b)", config
        )
        with pytest.raises(ExecutionError):
            ex.run()

    def test_machine_count_mismatch_raises(self):
        g = chain_graph(5)
        engine = RPQdEngine(g, EngineConfig(num_machines=2))
        plan = engine.compile("SELECT COUNT(*) FROM MATCH (a)->(b)")
        other = DistributedGraph(g, 3)
        with pytest.raises(ExecutionError):
            QueryExecution(other, plan, EngineConfig(num_machines=2), lambda m: None)

    def test_ground_truth_quiescent_after_run(self):
        g = chain_graph(8)
        config = EngineConfig(num_machines=2)
        ex, _sinks, _plan = make_execution(
            g, "SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)", config
        )
        ex.run()
        assert ex.ground_truth_quiescent()


class TestFailureInjection:
    """The network is reliable but not synchronous: injected extra delays on
    control messages must never change results or hang the protocol."""

    QUERY = "SELECT COUNT(*) FROM MATCH (a)-/:LINK{1,3}/->(b)"

    def run_with_hooks(self, extra_delay_fn=None, duplicate_fn=None, machines=3):
        g = random_graph(25, 70, seed=9)
        config = EngineConfig(num_machines=machines)
        ex, sinks, plan = make_execution(g, self.QUERY, config)
        ex.network.extra_delay_fn = extra_delay_fn
        ex.network.duplicate_fn = duplicate_fn
        stats = ex.run()
        from repro.engine.result import assemble_results

        return assemble_results(plan, sinks).scalar(), stats

    def expected(self):
        g = random_graph(25, 70, seed=9)
        return RPQdEngine(g, EngineConfig(num_machines=1)).execute(self.QUERY).scalar()

    def test_delayed_done_messages(self):
        value, _ = self.run_with_hooks(
            extra_delay_fn=lambda m: 5 if isinstance(m, DoneMessage) else 0
        )
        assert value == self.expected()

    def test_delayed_batches(self):
        value, _ = self.run_with_hooks(
            extra_delay_fn=lambda m: (m.seq % 4) if isinstance(m, Batch) else 0
        )
        assert value == self.expected()

    def test_delayed_status_messages(self):
        value, _ = self.run_with_hooks(
            extra_delay_fn=lambda m: 9 if isinstance(m, StatusMessage) else 0
        )
        assert value == self.expected()

    def test_duplicated_status_messages(self):
        # STATUS is idempotent (latest generation wins): duplicates are safe.
        value, _ = self.run_with_hooks(
            duplicate_fn=lambda m: isinstance(m, StatusMessage)
        )
        assert value == self.expected()

    def test_everything_at_once(self):
        value, _ = self.run_with_hooks(
            extra_delay_fn=lambda m: m.seq % 3,
            duplicate_fn=lambda m: isinstance(m, StatusMessage) and m.seq % 2 == 0,
        )
        assert value == self.expected()


class TestVirtualTimeModel:
    def test_quiescent_round_precedes_protocol_end(self):
        g = chain_graph(10)
        r = RPQdEngine(g, EngineConfig(num_machines=2)).execute(
            "SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)"
        )
        assert r.stats.quiescent_round is not None
        assert r.stats.quiescent_round <= r.stats.rounds

    def test_smaller_quantum_means_more_rounds(self):
        g = random_graph(40, 120, seed=3)
        q = "SELECT COUNT(*) FROM MATCH (a)-/:LINK{1,2}/->(b)"
        fine = RPQdEngine(g, EngineConfig(num_machines=2, quantum=100.0)).execute(q)
        coarse = RPQdEngine(g, EngineConfig(num_machines=2, quantum=5000.0)).execute(q)
        assert fine.virtual_time > coarse.virtual_time
        assert fine.scalar() == coarse.scalar()

    def test_busy_and_idle_rounds_accounted(self):
        g = star_graph(20)
        r = RPQdEngine(g, EngineConfig(num_machines=4)).execute(
            "SELECT COUNT(*) FROM MATCH (a)-[:LINK]->(b)"
        )
        for m in r.stats.per_machine:
            assert m.busy_rounds + m.idle_rounds == r.stats.rounds


class TestWorkerInternals:
    def test_accumulator_undo_on_backtrack(self):
        """A DFT branch that fails its deferred check must not poison the
        accumulator for sibling branches."""
        from repro import GraphBuilder

        b = GraphBuilder()
        # src -> m1 -> dst1 (high), src -> m2 -> dst2 (low)
        src = b.add_vertex("N", score=0)
        m1 = b.add_vertex("N", score=100)
        m2 = b.add_vertex("N", score=1)
        d1 = b.add_vertex("N", score=0)
        d2 = b.add_vertex("N", score=5)
        b.add_edge(src, m1, "E")
        b.add_edge(m1, d1, "E")
        b.add_edge(src, m2, "E")
        b.add_edge(m2, d2, "E")
        g = b.build()
        # Chains of length 2 where every hop's pb.score <= sink.score.
        # Branch via m1 accumulates max=100 and fails at d1 (100 > 0); the
        # branch via m2 must still succeed (max over its own path = 5 <= 5).
        q = (
            "PATH hop AS (pa:N)-[:E]->(pb:N) "
            "SELECT COUNT(*) FROM MATCH (s:N)-/:hop{2,2}/->(sink:N) "
            f"WHERE id(s) = {src} AND pb.score <= sink.score"
        )
        r = RPQdEngine(g, EngineConfig(num_machines=1)).execute(q)
        assert r.scalar() == 1

    def test_blocked_worker_processes_inbox(self):
        # Extremely tight buffers force blocking; results stay correct and
        # the run terminates thanks to nested inbox processing + overflow.
        g = random_graph(40, 160, seed=17)
        q = "SELECT COUNT(*) FROM MATCH (a)-/:LINK{1,3}/->(b)"
        config = EngineConfig(
            num_machines=4,
            buffers_per_machine=8,
            batch_size=4,
            rpq_flow_depth=1,
            rpq_shared_credits=1,
            rpq_overflow_per_depth=1,
        )
        tight = RPQdEngine(g, config).execute(q)
        loose = RPQdEngine(g, EngineConfig(num_machines=4)).execute(q)
        assert tight.scalar() == loose.scalar()
        assert tight.stats.flow_control_blocks > 0
