"""Tests for the runtime protocol sanitizer (repro.analysis.sanitizer).

Covers each invariant family with (a) a clean run that must not trip it
and (b) a seeded violation it must catch: flow-control credit
conservation, termination counter monotonicity and stale-snapshot
confirmation, and reachability-index depth monotonicity.
"""

import heapq

import pytest

from repro import EngineConfig, GraphBuilder, RPQdEngine
from repro.analysis.sanitizer import (
    RuntimeSanitizer,
    sanitizer_enabled,
    sanitizer_from_config,
)
from repro.engine.result import MachineSink
from repro.errors import SanitizerViolation
from repro.graph.generators import random_graph
from repro.pgql import parse
from repro.plan import compile_query
from repro.rpq.reachability import IndexOutcome, ReachabilityIndex
from repro.runtime.buffers import FlowControl
from repro.runtime.machine import Machine
from repro.runtime.scheduler import QueryExecution
from repro.runtime.stats import MachineStats
from repro.runtime.termination import TerminationProtocol, TerminationTracker


@pytest.fixture(scope="module")
def graph():
    return random_graph(120, 360, seed=5, edge_label="E")


@pytest.fixture(scope="module")
def rpq_plan():
    b = GraphBuilder()
    for i in range(4):
        b.add_vertex("N", idx=i)
    b.add_edge(0, 1, "E")
    g = b.build()
    return compile_query(parse("SELECT COUNT(*) FROM MATCH (a)-/:E+/->(b)"), g)


CONFIG = EngineConfig(num_machines=4, buffers_per_machine=2048)


def acquire_one(flow):
    """Acquire a credit from the first configured non-path bucket."""
    dst, stage_idx, _ = next(k for k in flow._capacity if k[2] == 0)
    key = flow.try_acquire(dst, stage_idx, 0, False)
    assert key is not None
    return key


class TestGating:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitizer_from_config(EngineConfig()) is None

    def test_config_flag(self):
        assert sanitizer_from_config(EngineConfig(sanitize=True)) is not None

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitizer_enabled(EngineConfig())
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitizer_enabled(EngineConfig())

    def test_components_skip_hooks_when_disabled(self, rpq_plan):
        flow = FlowControl(0, rpq_plan, CONFIG, MachineStats(), sanitizer=None)
        flow.release(acquire_one(flow))
        assert flow.in_flight == 0


class TestFlowControlInvariants:
    def make(self, plan):
        san = RuntimeSanitizer()
        flow = FlowControl(0, plan, CONFIG, MachineStats(), sanitizer=san)
        return flow, san

    def test_clean_acquire_release_cycle(self, rpq_plan):
        flow, san = self.make(rpq_plan)
        flow.release(acquire_one(flow))
        san.on_query_end([flow])
        assert san.checks > 0

    def test_total_bucket_mismatch_caught(self, rpq_plan):
        flow, san = self.make(rpq_plan)
        key = acquire_one(flow)
        flow._total_in_flight += 1  # seeded drift
        with pytest.raises(SanitizerViolation, match="sum of buckets"):
            flow.release(key)

    def test_bucket_over_capacity_caught(self, rpq_plan):
        flow, san = self.make(rpq_plan)
        key = acquire_one(flow)
        # Seed a violation: force the bucket beyond its configured capacity,
        # keeping the total consistent so only the capacity check can fire.
        capacity = flow._capacity[key]
        flow._in_flight[key] = capacity + 5
        flow._total_in_flight = capacity + 5
        with pytest.raises(SanitizerViolation, match="capacity"):
            san.on_credit_acquired(flow, key, capacity)

    def test_unreturned_credit_caught_at_query_end(self, rpq_plan):
        flow, san = self.make(rpq_plan)
        acquire_one(flow)  # never released
        with pytest.raises(SanitizerViolation, match="credits returned"):
            san.on_query_end([flow])


class TestTerminationInvariants:
    def test_snapshot_monotone_clean(self):
        san = RuntimeSanitizer()
        tracker = TerminationTracker(0, sanitizer=san)
        tracker.record_sent(1, 0)
        tracker.snapshot(1)
        tracker.record_sent(1, 0)
        tracker.record_processed(1, 0)
        tracker.snapshot(1)  # strictly growing counters: fine

    def test_counter_regression_caught(self):
        san = RuntimeSanitizer()
        tracker = TerminationTracker(0, sanitizer=san)
        tracker.record_sent(1, 0)
        tracker.record_sent(1, 0)
        tracker.snapshot(1)
        tracker.sent[(1, 0)] = 1  # seeded drift: counter moved backwards
        with pytest.raises(SanitizerViolation, match="monotone"):
            tracker.snapshot(1)

    def test_processed_exceeding_sent_caught(self):
        san = RuntimeSanitizer()
        t0 = TerminationTracker(0)
        t1 = TerminationTracker(1)
        t0.record_sent(1, 0)
        t1.record_processed(1, 0)
        san.check_global_counts([t0, t1])  # 1 == 1: fine
        t1.record_processed(1, 0)  # seeded violation: processing outran creation
        with pytest.raises(SanitizerViolation, match="processed <= sent"):
            san.check_global_counts([t0, t1])

    def test_final_counts_must_balance(self):
        san = RuntimeSanitizer()
        t0 = TerminationTracker(0)
        t0.record_sent(1, 0)
        with pytest.raises(SanitizerViolation, match="sent == processed"):
            san.check_final_counts([t0])


def _two_machine_protocol(plan, sanitizer=None, protocol_cls=TerminationProtocol):
    tracker = TerminationTracker(0, sanitizer=sanitizer)
    protocol = protocol_cls(0, plan, 2, tracker, sanitizer=sanitizer)
    return tracker, protocol


def _remote_status(remote_tracker, generation):
    remote_tracker.generation = generation
    return remote_tracker.snapshot(0)


class TestConfirmationRace:
    """Satellite: the stale-snapshot confirmation race (paper Section 3.4).

    A machine that evaluates "everything terminated" holds a candidate and
    may conclude only once a second evaluation succeeds with strictly
    newer snapshots from every machine.  A stale snapshot arriving before
    the second evaluation must not confirm — and a protocol patched to
    skip the newness check must be caught by the sanitizer.
    """

    def make_quiescent_pair(self, plan, sanitizer=None,
                            protocol_cls=TerminationProtocol):
        # Machine 1 did one unit of stage-0 work; machine 0 none.
        remote = TerminationTracker(1)
        remote.record_bootstrap(1)
        remote.record_processed(0, 0)
        tracker, protocol = _two_machine_protocol(
            plan, sanitizer=sanitizer, protocol_cls=protocol_cls
        )
        return tracker, protocol, remote

    def test_candidate_not_confirmed_by_stale_snapshot(self, rpq_plan):
        tracker, protocol, remote = self.make_quiescent_pair(rpq_plan)
        protocol.on_status(_remote_status(remote, generation=1))
        assert protocol.check() is False  # first success: candidate only
        assert protocol._candidate is not None
        # The same (stale) generation arrives again before the second
        # evaluation: the conclusion must be withheld.
        protocol.on_status(_remote_status(remote, generation=1))
        assert protocol.check() is False
        assert not protocol.concluded
        # A strictly newer snapshot with identical totals confirms.
        protocol.on_status(_remote_status(remote, generation=2))
        tracker.generation += 1
        assert protocol.check() is True

    def test_candidate_discarded_when_counts_move(self, rpq_plan):
        tracker, protocol, remote = self.make_quiescent_pair(rpq_plan)
        protocol.on_status(_remote_status(remote, generation=1))
        assert protocol.check() is False
        # New work appears between the evaluations: counts differ, so the
        # candidate must be replaced, not confirmed.
        remote.record_bootstrap(1)
        protocol.on_status(_remote_status(remote, generation=2))
        tracker.generation += 1
        assert protocol.check() is False
        assert not protocol.concluded

    def test_sanitizer_catches_stale_confirmation(self, rpq_plan):
        class BrokenProtocol(TerminationProtocol):
            """Seeded bug: treats any snapshot set as strictly newer."""

            @staticmethod
            def _strictly_newer(gen_vector, old_gens):
                return True

        san = RuntimeSanitizer()
        tracker, protocol, remote = self.make_quiescent_pair(
            rpq_plan, sanitizer=san, protocol_cls=BrokenProtocol
        )
        protocol.on_status(_remote_status(remote, generation=1))
        assert protocol.check() is False
        protocol.on_status(_remote_status(remote, generation=1))  # stale
        with pytest.raises(SanitizerViolation, match="strictly newer"):
            protocol.check()
        assert not protocol.concluded

    def test_sanitizer_requires_a_candidate(self):
        san = RuntimeSanitizer()
        with pytest.raises(SanitizerViolation, match="prior candidate"):
            san.on_conclude(0, ((0, 1), (1, 1)))


class TestReachabilityInvariants:
    def test_duplicated_overwrite_is_clean(self):
        san = RuntimeSanitizer()
        index = ReachabilityIndex(0, 0, sanitizer=san)
        assert index.check_and_update(7, 3, depth=4) is IndexOutcome.INSERTED
        assert index.check_and_update(7, 3, depth=2) is IndexOutcome.DUPLICATED
        assert index.depth_of(7, 3) == 2

    def test_non_decreasing_overwrite_caught(self):
        san = RuntimeSanitizer()
        index = ReachabilityIndex(0, 0, sanitizer=san)
        index.check_and_update(7, 3, depth=2)
        with pytest.raises(SanitizerViolation, match="strictly decreases"):
            san.on_index_overwrite(index, 7, 3, old=2, new=2)

    def test_broken_index_subclass_caught(self):
        class BrokenIndex(ReachabilityIndex):
            """Seeded bug: overwrites on *greater-or-equal* depth."""

            def check_and_update(self, source_path_id, dst_vertex, depth):
                second = self._first_level.setdefault(dst_vertex, {})
                old = second.get(source_path_id)
                if old is None:
                    second[source_path_id] = depth
                    return IndexOutcome.INSERTED
                if self._san is not None:
                    self._san.on_index_overwrite(
                        self, source_path_id, dst_vertex, old, depth
                    )
                second[source_path_id] = depth
                return IndexOutcome.DUPLICATED

        index = BrokenIndex(0, 0, sanitizer=RuntimeSanitizer())
        index.check_and_update(7, 3, depth=2)
        with pytest.raises(SanitizerViolation, match="strictly decreases"):
            index.check_and_update(7, 3, depth=5)


class TestEndToEnd:
    def run_query(self, graph, query, config):
        engine = RPQdEngine(graph, config)
        plan = engine.compile(query)
        sinks = [MachineSink(plan) for _ in range(config.num_machines)]
        execution = QueryExecution(
            engine.dgraph, plan, config, sink_factory=lambda m: sinks[m]
        )
        stats = execution.run()
        return execution, stats

    def test_tier1_workload_clean_under_sanitizer(self, graph):
        config = CONFIG.with_(sanitize=True)
        for query in (
            "SELECT COUNT(*) FROM MATCH (a)-/:E+/->(b)",
            "SELECT COUNT(*) FROM MATCH (a)-/:E{1,3}/->(b)",
            "SELECT COUNT(*) FROM MATCH (a)-[:E]->(b)",
        ):
            execution, _stats = self.run_query(graph, query, config)
            assert execution.sanitizer is not None
            assert execution.sanitizer.checks > 0

    def test_sanitized_result_matches_unsanitized(self, graph):
        query = "SELECT COUNT(*) FROM MATCH (a)-/:E{1,4}/->(b)"
        plain = RPQdEngine(graph, CONFIG).execute(query).scalar()
        sanitized = (
            RPQdEngine(graph, CONFIG.with_(sanitize=True)).execute(query).scalar()
        )
        assert plain == sanitized

    def test_broken_done_protocol_caught(self, graph, monkeypatch):
        """A deliberately broken credit release trips credit conservation."""

        def broken_pop_batch(self):
            batch = heapq.heappop(self._inbox)[1]  # absorb without DONE
            self._absorbed += 1
            return batch

        monkeypatch.setattr(Machine, "pop_batch", broken_pop_batch)
        engine = RPQdEngine(graph, CONFIG.with_(sanitize=True))
        with pytest.raises(SanitizerViolation):
            engine.execute("SELECT COUNT(*) FROM MATCH (a)-/:E{1,3}/->(b)")

    def test_rpq002_also_flags_the_broken_release(self):
        """The same defect class is caught statically by lint rule RPQ002."""
        from repro.analysis import Linter, ProjectSource
        from repro.analysis.rules import CreditLeakRule

        broken = (
            "def flush(self, batch):\n"
            "    credit = self.flow.try_acquire(1, 2, 0, True)\n"
            "    if credit is None:\n"
            "        return False\n"
            "    return True\n"  # credit never attached to the batch
        )
        violations = Linter([CreditLeakRule()]).run(
            ProjectSource.from_sources({"repro/runtime/machine.py": broken})
        )
        assert any("leaks" in v.message for v in violations)
