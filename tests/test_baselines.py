"""Tests for the Neo4j-like BFT and PostgreSQL-like recursive baselines."""

import pytest

from repro import EngineConfig, GraphBuilder, RPQdEngine
from repro.baselines import (
    BftEngine,
    DistributedBftEngine,
    RecursiveEngine,
    UnsupportedQueryError,
)
from repro.graph.generators import (
    chain_graph,
    complete_graph,
    random_graph,
    reply_forest,
    two_label_graph,
)

ENGINES = [BftEngine, RecursiveEngine, DistributedBftEngine]


@pytest.fixture(params=ENGINES, ids=["bft", "recursive", "distributed-bft"])
def engine_cls(request):
    return request.param


class TestBaselineBasics:
    def test_edge_count(self, engine_cls):
        g = random_graph(20, 50, seed=1)
        assert engine_cls(g).execute(
            "SELECT COUNT(*) FROM MATCH (a)-[:LINK]->(b)"
        ).scalar() == 50

    def test_projections_and_order(self, engine_cls):
        g = chain_graph(4)
        r = engine_cls(g).execute(
            "SELECT a.idx AS i FROM MATCH (a)-[:NEXT]->(b) ORDER BY i DESC"
        )
        assert r.column("i") == [2, 1, 0]

    def test_group_by(self, engine_cls):
        g = two_label_graph(30, seed=5)
        r = engine_cls(g).execute(
            "SELECT label(a), COUNT(*) FROM MATCH (a)-[:X]->(b) GROUP BY label(a)"
        )
        assert set(dict(r.rows)) <= {"A", "B"}

    def test_rpq_plus(self, engine_cls):
        g = chain_graph(8)
        assert engine_cls(g).execute(
            "SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)"
        ).scalar() == 28

    def test_macro_filter(self, engine_cls):
        b = GraphBuilder()
        for age in [10, 20, 15, 30]:
            b.add_vertex("Person", age=age)
        for s, d in [(0, 1), (1, 2), (2, 3)]:
            b.add_edge(s, d, "KNOWS")
        g = b.build()
        r = engine_cls(g).execute(
            "PATH p AS (x)-[:KNOWS]->(y) WHERE x.age <= y.age "
            "SELECT COUNT(*) FROM MATCH (a)-/:p+/->(b)"
        )
        # ascending edges: 0->1 (10<=20), 2->3 (15<=30): chains {(0,1),(2,3)}
        assert r.scalar() == 2

    def test_macro_edge_property_filter(self, engine_cls):
        # Regression: edge variables must bind to edge ids so macro filters
        # read edge properties (not vertex properties).
        b = GraphBuilder()
        for _ in range(4):
            b.add_vertex("Account")
        b.add_edge(0, 1, "TRANSFER", amount=10_000)
        b.add_edge(1, 2, "TRANSFER", amount=50)  # breaks the big-chain
        b.add_edge(1, 3, "TRANSFER", amount=9_000)
        g = b.build()
        q = (
            "PATH big AS (x:Account)-[t:TRANSFER]->(y:Account) "
            "WHERE t.amount >= 8000 "
            "SELECT COUNT(*) FROM MATCH (a:Account)-/:big+/->(c:Account)"
        )
        got = engine_cls(g).execute(q).scalar()
        rpqd = RPQdEngine(g, EngineConfig(num_machines=2)).execute(q).scalar()
        assert got == rpqd == 3  # (0,1), (0,3), (1,3)

    def test_deferred_cross_filter_rejected(self, engine_cls):
        g = chain_graph(4)
        with pytest.raises(UnsupportedQueryError):
            engine_cls(g).execute(
                "PATH p AS (pa)-[:NEXT]->(pb) "
                "SELECT COUNT(*) FROM MATCH (p1)-/:p+/->(p2) WHERE pb.idx <= p2.idx"
            )

    def test_inline_cross_filter_supported(self, engine_cls):
        g = chain_graph(5)
        r = engine_cls(g).execute(
            "PATH p AS (pa)-[:NEXT]->(pb) "
            "SELECT COUNT(*) FROM MATCH (p1)-/:p+/->(p2) WHERE p1.idx <= pa.idx"
        )
        assert r.scalar() == 10  # always true on a chain: all pairs

    def test_stats_populated(self, engine_cls):
        g = reply_forest(10, 3, 4, seed=2)
        r = engine_cls(g).execute(
            "SELECT COUNT(*) FROM MATCH (p:Post)<-/:REPLY_OF+/-(c:Comment)"
        )
        assert r.stats.edges_traversed > 0
        assert r.stats.cost_units > 0
        assert r.stats.virtual_time > 0
        assert r.stats.wall_seconds >= 0


class TestEngineEquivalence:
    QUERIES = [
        "SELECT COUNT(*) FROM MATCH (a)-/:LINK+/->(b)",
        "SELECT COUNT(*) FROM MATCH (a)-/:LINK*/->(b) WHERE id(a) = 4",
        "SELECT COUNT(*) FROM MATCH (a)-/:LINK{2,4}/->(b)",
        "SELECT COUNT(*) FROM MATCH (a)-/:LINK{1,2}/-(b) WHERE id(a) = 0",
        "SELECT COUNT(*) FROM MATCH (a)<-/:LINK{1,3}/-(b)",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_three_way_equivalence(self, query):
        g = random_graph(22, 60, seed=33)
        rpqd = RPQdEngine(g, EngineConfig(num_machines=3)).execute(query).scalar()
        bft = BftEngine(g).execute(query).scalar()
        rec = RecursiveEngine(g).execute(query).scalar()
        assert rpqd == bft == rec

    def test_distributed_bft_agrees_on_cycles(self):
        g = complete_graph(8)
        q = "SELECT COUNT(*) FROM MATCH (a)-/:LINK{1,3}/->(b)"
        assert (
            DistributedBftEngine(g, num_machines=4).execute(q).scalar()
            == BftEngine(g).execute(q).scalar()
        )

    def test_distributed_bft_charges_barriers(self):
        # More supersteps (deeper quantifier) => more barrier time even
        # when the extra levels discover nothing new.
        g = chain_graph(6)
        shallow = DistributedBftEngine(g).execute(
            "SELECT COUNT(*) FROM MATCH (a)-/:NEXT{1,1}/->(b) WHERE id(a)=0"
        )
        deep = DistributedBftEngine(g).execute(
            "SELECT COUNT(*) FROM MATCH (a)-/:NEXT{1,4}/->(b) WHERE id(a)=0"
        )
        assert deep.stats.cost_units > shallow.stats.cost_units

    def test_memory_profiles_differ(self):
        # The recursive engine materializes the full relation; BFS only the
        # frontier+visited set; this asymmetry is what Figure 2 leans on.
        g = reply_forest(40, 3, 6, seed=4)
        q = "SELECT COUNT(*) FROM MATCH (p:Post)<-/:REPLY_OF+/-(c:Comment)"
        bft = BftEngine(g).execute(q)
        rec = RecursiveEngine(g).execute(q)
        assert bft.scalar() == rec.scalar()
        assert rec.stats.peak_relation >= 1
        assert rec.stats.cost_units > bft.stats.cost_units
