"""Unit tests for expression compilation and NULL semantics."""

import pytest

from repro.errors import PlanningError
from repro.graph import GraphBuilder
from repro.pgql import DictBinder, Literal, compile_expr, fold_constants, parse_expression


@pytest.fixture
def graph():
    b = GraphBuilder()
    b.add_vertex("Person", name="Ann", age=30)
    b.add_vertex("Person", name="Bob")  # age missing -> None
    b.add_vertex("City", name="Oslo")
    return b.build()


def evaluate(graph, text, binding):
    fn = compile_expr(parse_expression(text), DictBinder(graph))
    return fn(binding)


class TestEvaluation:
    def test_property_comparison(self, graph):
        assert evaluate(graph, "a.age >= 18", {"a": 0}) is True
        assert evaluate(graph, "a.age < 18", {"a": 0}) is False

    def test_null_comparisons_are_false(self, graph):
        # Bob has no age: every comparison with NULL is false.
        assert evaluate(graph, "a.age >= 18", {"a": 1}) is False
        assert evaluate(graph, "a.age < 18", {"a": 1}) is False
        assert evaluate(graph, "a.age = a.age", {"a": 1}) is False

    def test_mixed_type_comparison_is_false(self, graph):
        assert evaluate(graph, "a.name > 5", {"a": 0}) is False

    def test_arithmetic(self, graph):
        assert evaluate(graph, "a.age + 5", {"a": 0}) == 35
        assert evaluate(graph, "a.age * 2 - 10", {"a": 0}) == 50

    def test_arithmetic_null_propagates(self, graph):
        assert evaluate(graph, "a.age + 5", {"a": 1}) is None

    def test_division_by_zero_is_null(self, graph):
        assert evaluate(graph, "a.age / 0", {"a": 0}) is None

    def test_boolean_connectives(self, graph):
        assert evaluate(graph, "a.age = 30 AND a.name = 'Ann'", {"a": 0}) is True
        assert evaluate(graph, "a.age = 31 OR a.name = 'Ann'", {"a": 0}) is True
        assert evaluate(graph, "NOT a.age = 31", {"a": 0}) is True

    def test_id_function(self, graph):
        assert evaluate(graph, "id(a) = 2", {"a": 2}) is True

    def test_label_function(self, graph):
        assert evaluate(graph, "label(a) = 'City'", {"a": 2}) is True

    def test_scalar_functions(self, graph):
        assert evaluate(graph, "abs(0 - a.age)", {"a": 0}) == 30
        assert evaluate(graph, "lower(a.name)", {"a": 0}) == "ann"
        assert evaluate(graph, "upper(a.name)", {"a": 0}) == "ANN"
        assert evaluate(graph, "length(a.name)", {"a": 0}) == 3
        assert evaluate(graph, "coalesce(a.age, 0)", {"a": 1}) == 0

    def test_unbound_variable_reads_none(self, graph):
        assert evaluate(graph, "z.age = 30", {"a": 0}) is False

    def test_var_equality_compares_ids(self, graph):
        assert evaluate(graph, "a = b", {"a": 0, "b": 0}) is True
        assert evaluate(graph, "a = b", {"a": 0, "b": 1}) is False


class TestCompileErrors:
    def test_aggregate_in_filter_rejected(self, graph):
        with pytest.raises(PlanningError):
            compile_expr(parse_expression("COUNT(*)"), DictBinder(graph))

    def test_unknown_function(self, graph):
        with pytest.raises(PlanningError):
            compile_expr(parse_expression("frobnicate(a)"), DictBinder(graph))

    def test_label_of_non_var_rejected(self, graph):
        with pytest.raises(PlanningError):
            compile_expr(parse_expression("label(a.x)"), DictBinder(graph))


class TestFolding:
    def test_fold_arithmetic(self):
        assert fold_constants(parse_expression("1 + 2 * 3")) == Literal(7)

    def test_fold_boolean(self):
        assert fold_constants(parse_expression("TRUE AND FALSE")) == Literal(False)

    def test_fold_preserves_dynamic_parts(self):
        e = fold_constants(parse_expression("a.x + (1 + 1)"))
        assert str(e) == "(a.x + 2)"
