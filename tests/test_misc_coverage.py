"""Coverage for less-traveled paths: label captures, edge filters on edge
hops, inspect-hop flow control targets, scalar functions in distributed
queries, and undirected fixed patterns."""

import pytest

from repro import EngineConfig, GraphBuilder, RPQdEngine
from repro.baselines import BftEngine
from repro.pgql import parse
from repro.plan import compile_query
from repro.runtime.buffers import remote_target_stages


@pytest.fixture(scope="module")
def social():
    b = GraphBuilder()
    ann = b.add_vertex("Person", name="Ann")
    post = b.add_vertex("Post", extra_labels=("Message",), text="hi")
    comment = b.add_vertex("Comment", extra_labels=("Message",), text="yo")
    bob = b.add_vertex("Person", name="Bob")
    b.add_edge(post, ann, "HAS_CREATOR", weight=1)
    b.add_edge(comment, post, "REPLY_OF", weight=9)
    b.add_edge(comment, bob, "HAS_CREATOR", weight=2)
    b.add_edge(ann, bob, "KNOWS", weight=5)
    return b.build()


class TestLabelCaptures:
    def test_label_projection_distributed(self, social):
        engine = RPQdEngine(social, EngineConfig(num_machines=2))
        r = engine.execute(
            "SELECT label(m), COUNT(*) FROM MATCH (m:Message) GROUP BY label(m)"
        )
        assert dict(r.rows) == {"Post": 1, "Comment": 1}

    def test_label_in_where(self, social):
        engine = RPQdEngine(social, EngineConfig(num_machines=2))
        r = engine.execute(
            "SELECT COUNT(*) FROM MATCH (m:Message) WHERE label(m) = 'Post'"
        )
        assert r.scalar() == 1


class TestEdgeFiltersOnHops:
    def test_neighbor_hop_edge_filter(self, social):
        engine = RPQdEngine(social, EngineConfig(num_machines=2))
        r = engine.execute(
            "SELECT COUNT(*) FROM MATCH (a)-[e:HAS_CREATOR]->(b) WHERE e.weight >= 2"
        )
        assert r.scalar() == 1

    def test_edge_property_projection(self, social):
        engine = RPQdEngine(social, EngineConfig(num_machines=2))
        r = engine.execute(
            "SELECT e.weight FROM MATCH (a:Comment)-[e]->(b) ORDER BY e.weight"
        )
        assert r.column(0) == [2, 9]

    def test_cycle_closing_edge_hop_with_filter(self):
        b = GraphBuilder()
        for _ in range(3):
            b.add_vertex("N")
        b.add_edge(0, 1, "E", w=1)
        b.add_edge(1, 2, "E", w=1)
        b.add_edge(2, 0, "E", w=7)  # closing edge, heavy
        b.add_edge(1, 0, "E", w=1)  # closing edge for the 2-cycle, light
        g = b.build()
        engine = RPQdEngine(g, EngineConfig(num_machines=2))
        r = engine.execute(
            "SELECT COUNT(*) FROM MATCH (a)-[:E]->(b)-[:E]->(c)-[x:E]->(a) "
            "WHERE x.w > 5"
        )
        # Triangles whose closing edge has w > 5: rotations of (0,1,2)
        # close with edges (2->0 w=7), (0->1 w=1), (1->2 w=1): exactly one
        # rotation has the heavy closing edge.
        assert r.scalar() == 1
        assert BftEngine(g).execute(
            "SELECT COUNT(*) FROM MATCH (a)-[:E]->(b)-[:E]->(c)-[x:E]->(a) "
            "WHERE x.w > 5"
        ).scalar() == 1


class TestRemoteTargets:
    def test_inspect_targets_are_remote(self, social):
        plan = compile_query(
            parse(
                "SELECT COUNT(*) FROM MATCH (a)->(b)->(c), MATCH (a)->(d) "
                "WHERE id(a) = 0"
            ),
            social,
        )
        targets = remote_target_stages(plan)
        # Both neighbor-hop targets and the inspect-hop target need inboxes.
        from repro.plan import HopKind

        inspect_targets = [
            s.hop.target for s in plan.stages
            if s.hop is not None and s.hop.kind is HopKind.INSPECT
        ]
        assert inspect_targets
        assert all(t in targets for t in inspect_targets)


class TestScalarFunctionsDistributed:
    def test_functions_in_projection(self, social):
        engine = RPQdEngine(social, EngineConfig(num_machines=2))
        r = engine.execute(
            "SELECT upper(a.name), length(a.name), coalesce(a.missing, 0) "
            "FROM MATCH (a:Person) ORDER BY upper(a.name)"
        )
        assert r.rows == [("ANN", 3, 0), ("BOB", 3, 0)]

    def test_arithmetic_in_filters(self, social):
        engine = RPQdEngine(social, EngineConfig(num_machines=2))
        r = engine.execute(
            "SELECT COUNT(*) FROM MATCH (a)-[e]->(b) WHERE e.weight % 2 = 1"
        )
        assert r.scalar() == 3  # weights 1, 9, 5


class TestUndirectedFixedPatterns:
    def test_both_direction_two_hop(self, social):
        engine = RPQdEngine(social, EngineConfig(num_machines=2))
        got = engine.execute(
            "SELECT COUNT(*) FROM MATCH (a:Person)-[:KNOWS]-(b:Person)"
        ).scalar()
        assert got == 2  # each direction of the single KNOWS edge

    def test_mixed_directions_chain(self, social):
        engine = RPQdEngine(social, EngineConfig(num_machines=2))
        got = engine.execute(
            "SELECT COUNT(*) FROM MATCH (c:Comment)-[:REPLY_OF]->(p:Post)"
            "-[:HAS_CREATOR]->(who:Person)"
        ).scalar()
        assert got == 1


class TestDistinctWithRpq:
    def test_distinct_destinations(self):
        b = GraphBuilder()
        for i in range(5):
            b.add_vertex("N", group=i % 2)
        for s, d in [(0, 2), (1, 2), (2, 3), (2, 4)]:
            b.add_edge(s, d, "E")
        g = b.build()
        engine = RPQdEngine(g, EngineConfig(num_machines=2))
        r = engine.execute(
            "SELECT DISTINCT b.group FROM MATCH (a)-/:E+/->(b)"
        )
        assert sorted(v[0] for v in r.rows) == [0, 1]
