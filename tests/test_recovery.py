"""Crash recovery tests (repro.recovery / docs/recovery.md).

The headline contract: with ``EngineConfig(recovery=True)``, any seeded
FaultPlan with *permanent* machine crashes (at least one survivor) must
yield ``complete=True`` and a result set bit-identical to the fault-free
run — checkpoint, partition failover, and exactly-once replay hide the
loss entirely.  Every execution here runs under the protocol sanitizer,
whose recovery hooks verify the rollback restored the checkpoint exactly.
"""

import json

import pytest

from repro import EngineConfig, RPQdEngine
from repro.cli import main
from repro.errors import ConfigError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    MachineCrash,
    run_chaos_sweep,
    seeded_sweep,
)
from repro.graph.generators import random_graph, reply_forest
from repro.membership import MembershipService
from repro.recovery import CheckpointStore, ClusterCheckpoint
from repro.runtime.message import Batch
from repro.runtime.network import MAX_RETX_ATTEMPTS, SimulatedNetwork

CONFIG = EngineConfig(num_machines=4, buffers_per_machine=2048, sanitize=True)
ROWS_QUERY = "SELECT a, b FROM MATCH (a)-/:E{1,3}/->(b)"
AGG_QUERY = "SELECT COUNT(*) FROM MATCH (a)-/:E{1,3}/->(b)"


@pytest.fixture(scope="module")
def graph():
    return random_graph(60, 180, seed=11, edge_label="E")


@pytest.fixture(scope="module")
def engine(graph):
    return RPQdEngine(graph, CONFIG)


@pytest.fixture(scope="module")
def clean(engine):
    return engine.execute(ROWS_QUERY)


def run_with_crashes(engine, crashes, query=ROWS_QUERY, seed=7):
    plan = FaultPlan(seed=seed, crashes=crashes)
    config = CONFIG.with_(faults=plan, recovery=True)
    return engine.execute(query, config=config)


# ----------------------------------------------------------------------
# Configuration surface
# ----------------------------------------------------------------------
class TestConfig:
    def test_recovery_requires_reliable_transport(self):
        with pytest.raises(ConfigError):
            EngineConfig(recovery=True, reliable_transport=False)

    def test_recovery_auto_enables_transport(self):
        assert EngineConfig(recovery=True).transport_enabled
        assert not EngineConfig().transport_enabled

    @pytest.mark.parametrize("bad", [0, -5, 1.5])
    def test_deadline_validation(self, bad):
        with pytest.raises(ConfigError):
            EngineConfig(deadline=bad)

    def test_recovery_off_keeps_partial_semantics(self, engine, clean):
        """Without recovery a permanent crash still degrades to partial
        results (the PR 3 behaviour is the explicit opt-out)."""
        plan = FaultPlan(seed=7, crashes=(MachineCrash(machine=2, round=4),))
        config = CONFIG.with_(faults=plan, stall_limit=30)
        result = engine.execute(ROWS_QUERY, config=config)
        assert result.complete is False
        assert result.stats.down_machines == (2,)


# ----------------------------------------------------------------------
# Result-set equality across crash-timing edge cases
# ----------------------------------------------------------------------
class TestCrashRecoveryEquivalence:
    def assert_recovered(self, result, clean, recoveries=1):
        assert result.complete is True
        assert result.timed_out is False
        assert result.rows == clean.rows
        summary = result.stats.summary()["recovery"]
        assert summary["recoveries"] == recoveries
        assert summary["epoch"] == recoveries
        return summary

    def test_crash_during_depth0_bootstrap(self, engine, clean):
        """A crash in round 1, before any checkpoint but the initial one:
        the rollback restores the pristine pre-query state (bootstrap
        queues included) and replays from round zero."""
        result = run_with_crashes(engine, (MachineCrash(machine=1, round=1),))
        summary = self.assert_recovered(result, clean)
        assert 1 in summary["failed_over"]

    def test_crash_of_coordinator_machine_zero(self, engine, clean):
        """Machine 0 plays the coordinator role in broadcasts; recovery
        must not depend on it surviving (the RecoveryManager models a
        replicated service, not a process on machine 0)."""
        result = run_with_crashes(engine, (MachineCrash(machine=0, round=5),))
        summary = self.assert_recovered(result, clean)
        assert summary["hosts"][0] != 0

    def test_two_sequential_crashes(self, engine, clean):
        """A second permanent crash after the first failover: the stored
        checkpoint is reusable, and a survivor can end up hosting three
        logical machines."""
        result = run_with_crashes(
            engine,
            (MachineCrash(machine=2, round=4), MachineCrash(machine=3, round=9)),
        )
        summary = self.assert_recovered(result, clean, recoveries=2)
        assert sorted(summary["failed_over"]) == [2, 3]
        hosts = summary["hosts"]
        assert all(h not in (2, 3) for h in hosts)

    def test_crash_racing_termination_conclude(self, engine, clean):
        """Crash at the round the fault-free run concludes: the rollback
        may rewind machines that already concluded, and the scheduler's
        view must follow."""
        result = run_with_crashes(
            engine,
            (MachineCrash(machine=1, round=max(1, clean.stats.virtual_time)),),
        )
        self.assert_recovered(result, clean)

    def test_aggregate_query_recovers(self, engine):
        clean = engine.execute(AGG_QUERY)
        result = run_with_crashes(
            engine, (MachineCrash(machine=2, round=6),), query=AGG_QUERY
        )
        assert result.complete and result.scalar() == clean.scalar()

    def test_recovery_is_deterministic(self, engine):
        crashes = (MachineCrash(machine=2, round=6),)
        a = run_with_crashes(engine, crashes)
        b = run_with_crashes(engine, crashes)
        assert a.rows == b.rows
        assert a.stats.rounds == b.stats.rounds
        assert a.stats.summary()["recovery"] == b.stats.summary()["recovery"]

    def test_recovery_makespan_costs_rounds(self, engine, clean):
        """Rollback + replay costs virtual time, never correctness."""
        result = run_with_crashes(engine, (MachineCrash(machine=2, round=6),))
        assert result.stats.virtual_time > clean.stats.virtual_time


# ----------------------------------------------------------------------
# Seeded sweeps (the acceptance oracle)
# ----------------------------------------------------------------------
class TestRecoverySweeps:
    def test_tree_sweep_depth_table_invariant(self):
        """On a tree-shaped expansion even the per-depth work accounting
        must survive permanent crashes exactly (cf. the transient-crash
        sweep in test_faults.py)."""
        forest = reply_forest(num_roots=8, branching=3, depth=4, seed=5)
        plans = seeded_sweep(3, base_seed=21, horizon=80, permanent=True)
        config = CONFIG.with_(recovery=True)
        (report,) = run_chaos_sweep(
            forest,
            ["SELECT COUNT(*) FROM MATCH (a)-/:REPLY_OF+/->(b)"],
            plans,
            config=config,
        )
        assert report.ok, report.mismatches
        assert all(run.complete for run in report.runs)

    def test_cyclic_sweep_rows_invariant(self, graph):
        """On cyclic graphs rows are exactly invariant (depth accounting
        is order-dependent there, as in the transient sweep)."""
        plans = seeded_sweep(4, base_seed=42, horizon=40, permanent=True)
        config = CONFIG.with_(recovery=True)
        reports = run_chaos_sweep(
            graph,
            [ROWS_QUERY, AGG_QUERY],
            plans,
            config=config,
            compare_depths=False,
        )
        for report in reports:
            assert report.ok, report.mismatches
        # The sweep is vacuous unless failovers actually fired.
        assert any(
            run.recoveries for report in reports for run in report.runs
        )

    def test_permanent_seeded_plans_never_recover(self):
        for plan in seeded_sweep(3, base_seed=9, permanent=True):
            assert all(c.recover_round is None for c in plan.crashes)
        for plan in seeded_sweep(3, base_seed=9):
            assert all(c.recover_round is not None for c in plan.crashes)


# ----------------------------------------------------------------------
# Checkpoint store
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_keeps_last_n(self):
        store = CheckpointStore(keep=2)
        for i in range(4):
            store.put(
                ClusterCheckpoint(
                    epoch=0, round_no=i, reason="epoch",
                    machines={}, network={}, terminated=set(),
                )
            )
        assert len(store) == 2
        assert store.latest().round_no == 3

    def test_empty_store(self):
        assert CheckpointStore().latest() is None


# ----------------------------------------------------------------------
# Deadline (virtual-clock abort)
# ----------------------------------------------------------------------
class TestDeadline:
    def test_deadline_aborts_cleanly(self, engine, clean):
        result = engine.execute(
            ROWS_QUERY, config=CONFIG.with_(sanitize=False, deadline=2)
        )
        assert result.complete is False
        assert result.timed_out is True
        assert result.stats.summary()["timed_out"] is True
        assert "timed_out=True" in repr(result.result_set)
        # Partial rows are a lower bound on the full answer.
        assert set(result.rows) <= set(clean.rows)

    def test_generous_deadline_is_invisible(self, engine, clean):
        result = engine.execute(ROWS_QUERY, config=CONFIG.with_(deadline=10_000))
        assert result.complete is True
        assert result.timed_out is False
        assert result.rows == clean.rows
        assert "timed_out" not in result.stats.summary()


# ----------------------------------------------------------------------
# Retransmit exhaustion (no failover in place)
# ----------------------------------------------------------------------
class TestRetxExhaustion:
    def test_link_gives_up_on_confirmed_down_peer(self):
        """Abandonment is detection-driven: the link gives up only after
        the membership service CONFIRMS the peer down (never by peeking
        at the injector's permanent-crash ground truth)."""
        plan = FaultPlan(seed=1, crashes=(MachineCrash(machine=1, round=1),))
        injector = FaultInjector(plan, 2)
        net = SimulatedNetwork(2, reliable=True, faults=injector)
        membership = MembershipService(2, injector=injector)
        net.membership = membership
        batch = Batch(src_machine=0, dst_machine=1, target_stage=0, depth=0)
        batch.add(5, [5])
        net.send(batch, now_round=2)
        for round_no in range(3, 800):
            membership.tick(round_no)
            net.tick(round_no)
            net.drain(0, round_no)
            if not net._outstanding:
                break
        assert membership.is_confirmed_down(1)
        assert net.retx_exhausted == 1
        assert not net._outstanding
        assert net.transport_summary()["retx_exhausted"] == 1

    def test_exhaustion_needs_max_attempts(self):
        """Abandonment never fires before MAX_RETX_ATTEMPTS transmissions
        — inside PR 3's stall_limit=30 degrade tests it cannot trigger."""
        assert MAX_RETX_ATTEMPTS >= 8

    def test_engine_counts_exhaustion_and_notes(self, graph):
        plan = FaultPlan(seed=3, crashes=(MachineCrash(machine=2, round=4),))
        config = CONFIG.with_(sanitize=False, faults=plan, stall_limit=500)
        result = RPQdEngine(graph, config).execute(ROWS_QUERY)
        assert result.complete is False
        assert result.stats.transport["retx_exhausted"] > 0

    def test_rehosted_peer_is_never_abandoned(self, engine, clean):
        """With recovery on, frames to a failed-over logical machine are
        replayed and acked by the new host — zero exhausted links."""
        result = run_with_crashes(engine, (MachineCrash(machine=2, round=6),))
        assert result.stats.transport["retx_exhausted"] == 0
        assert result.stats.transport["frames_replayed"] >= 0


# ----------------------------------------------------------------------
# Propagation: workload CLI, chaos CLI, bench harness
# ----------------------------------------------------------------------
class TestPropagation:
    def test_workload_json_carries_completeness(self, capsys):
        rc = main(
            ["workload", "--scale", "xs", "--machines", "2", "--json",
             "--deadline", "2"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"]
        for record in payload["results"]:
            assert record["complete"] is False
            assert record["timed_out"] is True
            assert record["down_machines"] == []

    def test_workload_table_marks_partial(self, capsys):
        rc = main(
            ["workload", "--scale", "xs", "--machines", "2", "--deadline", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "*" in out and "PARTIAL" in out

    def test_chaos_cli_recover_sweep(self, capsys):
        rc = main(
            ["chaos", "--scale", "xs", "--plans", "2", "--queries", "Q09",
             "--sanitize", "--recover", "--json"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        payload = json.loads(out[: out.rindex("}") + 1])
        (record,) = payload["results"]
        assert record["ok"] is True
        assert record["recoveries"] >= 1

    def test_bench_result_completeness(self, graph):
        from repro.bench import BenchHarness, rpqd_executor

        plan = FaultPlan(seed=7, crashes=(MachineCrash(machine=2, round=4),))
        harness = BenchHarness(repetitions=1)
        cells = harness.run(
            {
                "degraded": rpqd_executor(
                    graph, 4, buffers_per_machine=2048, faults=plan,
                    stall_limit=30,
                ),
                "recovered": rpqd_executor(
                    graph, 4, buffers_per_machine=2048, faults=plan,
                    recovery=True,
                ),
            },
            {"q": ROWS_QUERY},
        )
        degraded = cells[("degraded", "q")]
        assert degraded.complete is False
        assert degraded.down_machines == (2,)
        recovered = cells[("recovered", "q")]
        assert recovered.complete is True
        assert recovered.timed_out is False
        assert recovered.down_machines == ()
