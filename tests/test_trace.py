"""Tests for the execution tracer and its timeline rendering."""

from repro import EngineConfig, RPQdEngine
from repro.datagen import mini_ldbc
from repro.graph.generators import chain_graph, random_graph
from repro.runtime.trace import ExecutionTrace


class TestRecorder:
    def test_records_rounds(self):
        g = chain_graph(10)
        r = RPQdEngine(g, EngineConfig(num_machines=2)).execute(
            "SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)", trace=True
        )
        assert r.trace is not None
        assert len(r.trace.rounds) == r.stats.rounds
        assert r.trace.num_machines == 2

    def test_trace_off_by_default(self):
        g = chain_graph(5)
        r = RPQdEngine(g, EngineConfig(num_machines=2)).execute(
            "SELECT COUNT(*) FROM MATCH (a)->(b)"
        )
        assert r.trace is None

    def test_pass_trace_instance(self):
        g = chain_graph(5)
        trace = ExecutionTrace()
        r = RPQdEngine(g, EngineConfig(num_machines=2)).execute(
            "SELECT COUNT(*) FROM MATCH (a)->(b)", trace=trace
        )
        assert r.trace is trace
        assert trace.rounds

    def test_termination_event_recorded(self):
        g = chain_graph(5)
        r = RPQdEngine(g, EngineConfig(num_machines=2)).execute(
            "SELECT COUNT(*) FROM MATCH (a)->(b)", trace=True
        )
        assert any("termination" in text for _r, text in r.trace.events)


class TestAnalysis:
    def test_utilization_bounds(self):
        g = random_graph(40, 120, seed=3)
        r = RPQdEngine(g, EngineConfig(num_machines=4)).execute(
            "SELECT COUNT(*) FROM MATCH (a)-/:LINK{1,2}/->(b)", trace=True
        )
        for u in r.trace.utilization():
            assert 0.0 <= u <= 1.0
        assert r.trace.imbalance() >= 1.0

    def test_imbalance_metric_synthetic(self):
        # One machine doing all the work at 2 machines => max/mean = 2.0.
        t = ExecutionTrace()
        t.configure(2, quantum=100.0)
        t.record_round(1, [100.0, 0.0])
        t.record_round(2, [100.0, 0.0])
        assert t.imbalance() == 2.0
        assert t.utilization() == [1.0, 0.0]
        assert t.busy_rounds(0) == 2
        assert t.busy_rounds(1) == 0

    def test_balanced_trace_has_unit_imbalance(self):
        t = ExecutionTrace()
        t.configure(3, quantum=10.0)
        t.record_round(1, [5.0, 5.0, 5.0])
        assert t.imbalance() == 1.0

    def test_summary_shape(self):
        g = chain_graph(6)
        r = RPQdEngine(g, EngineConfig(num_machines=2)).execute(
            "SELECT COUNT(*) FROM MATCH (a)->(b)", trace=True
        )
        s = r.trace.summary()
        assert set(s) == {"rounds", "utilization", "imbalance", "events"}


class TestRendering:
    def test_timeline_renders_one_row_per_machine(self):
        g = random_graph(30, 90, seed=4)
        r = RPQdEngine(g, EngineConfig(num_machines=3)).execute(
            "SELECT COUNT(*) FROM MATCH (a)-/:LINK{1,2}/->(b)", trace=True
        )
        text = r.trace.render_timeline(width=40)
        lines = text.splitlines()
        assert lines[0].startswith("M0 ")
        assert lines[2].startswith("M2 ")
        assert "utilization" in lines[-1]

    def test_empty_trace_renders(self):
        assert "no rounds" in ExecutionTrace().render_timeline()
