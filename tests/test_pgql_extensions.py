"""Tests for the extended SQL surface: IN, BETWEEN, IS NULL, HAVING."""

import pytest

from repro import EngineConfig, GraphBuilder, PlanningError, RPQdEngine
from repro.baselines import BftEngine, RecursiveEngine
from repro.pgql import parse, parse_expression
from repro.pgql.ast import Binary, InList, IsNull, Unary
from repro.pgql.expressions import compile_expr, DictBinder


@pytest.fixture(scope="module")
def graph():
    b = GraphBuilder()
    cities = ["Oslo", "Rome", "Oslo", None, "Pisa", "Rome", "Oslo"]
    people = []
    for i, city in enumerate(cities):
        props = {"idx": i}
        if city is not None:
            props["city"] = city
        people.append(b.add_vertex("Person", **props))
    for i in range(len(people) - 1):
        b.add_edge(people[i], people[i + 1], "KNOWS")
    return b.build()


@pytest.fixture(scope="module")
def engine(graph):
    return RPQdEngine(graph, EngineConfig(num_machines=2))


class TestInList:
    def test_parse(self):
        e = parse_expression("a.city IN ('Oslo', 'Rome')")
        assert isinstance(e, InList)
        assert e.values == ("Oslo", "Rome")
        assert not e.negated

    def test_parse_not_in(self):
        e = parse_expression("a.x NOT IN (1, 2, -3)")
        assert e.negated
        assert e.values == (1, 2, -3)

    def test_non_literal_rejected(self):
        with pytest.raises(Exception):
            parse_expression("a.x IN (b.y)")

    def test_execute(self, engine):
        r = engine.execute(
            "SELECT COUNT(*) FROM MATCH (a:Person) WHERE a.city IN ('Oslo', 'Pisa')"
        )
        assert r.scalar() == 4

    def test_not_in_excludes_null(self, engine):
        # SQL semantics: NULL NOT IN (...) is unknown, i.e. filtered out.
        r = engine.execute(
            "SELECT COUNT(*) FROM MATCH (a:Person) WHERE a.city NOT IN ('Oslo')"
        )
        assert r.scalar() == 3  # Rome, Pisa, Rome — not the NULL city

    def test_round_trip(self):
        e = parse_expression("a.city IN ('x')")
        assert parse_expression(str(e)) == e


class TestBetween:
    def test_parse_desugars(self):
        e = parse_expression("a.x BETWEEN 1 AND 5")
        assert isinstance(e, Binary) and e.op == "and"
        assert e.left.op == ">=" and e.right.op == "<="

    def test_not_between(self):
        e = parse_expression("a.x NOT BETWEEN 1 AND 5")
        assert isinstance(e, Unary) and e.op == "not"

    def test_binds_tighter_than_boolean_and(self):
        e = parse_expression("a.x BETWEEN 1 AND 5 AND a.y = 2")
        assert e.op == "and"
        assert e.right.op == "="

    def test_execute(self, engine):
        r = engine.execute(
            "SELECT COUNT(*) FROM MATCH (a:Person) WHERE a.idx BETWEEN 2 AND 4"
        )
        assert r.scalar() == 3


class TestIsNull:
    def test_parse(self):
        e = parse_expression("a.city IS NULL")
        assert isinstance(e, IsNull) and not e.negated
        e2 = parse_expression("a.city IS NOT NULL")
        assert e2.negated

    def test_evaluate(self, graph):
        fn = compile_expr(parse_expression("a.city IS NULL"), DictBinder(graph))
        assert fn({"a": 3}) is True
        assert fn({"a": 0}) is False

    def test_execute(self, engine):
        r = engine.execute("SELECT COUNT(*) FROM MATCH (a:Person) WHERE a.city IS NULL")
        assert r.scalar() == 1
        r = engine.execute(
            "SELECT COUNT(*) FROM MATCH (a:Person) WHERE a.city IS NOT NULL"
        )
        assert r.scalar() == 6


class TestHaving:
    QUERY = (
        "SELECT a.city, COUNT(*) FROM MATCH (a:Person) "
        "WHERE a.city IS NOT NULL GROUP BY a.city HAVING COUNT(*) >= 2"
    )

    def test_execute(self, engine):
        r = engine.execute(self.QUERY)
        assert dict(r.rows) == {"Oslo": 3, "Rome": 2}

    def test_having_with_alias(self, engine):
        r = engine.execute(
            "SELECT a.city AS c, COUNT(*) FROM MATCH (a:Person) "
            "WHERE a.city IS NOT NULL GROUP BY a.city HAVING c = 'Pisa'"
        )
        assert r.rows == [("Pisa", 1)]

    def test_having_arithmetic(self, engine):
        r = engine.execute(
            "SELECT a.city, COUNT(*) FROM MATCH (a:Person) "
            "WHERE a.city IS NOT NULL GROUP BY a.city HAVING COUNT(*) * 2 > 4"
        )
        assert dict(r.rows) == {"Oslo": 3}

    def test_having_unresolvable_rejected(self, engine):
        with pytest.raises(PlanningError):
            engine.execute(
                "SELECT a.city, COUNT(*) FROM MATCH (a:Person) "
                "GROUP BY a.city HAVING SUM(a.idx) > 3"
            )

    def test_baselines_agree(self, graph, engine):
        expected = engine.execute(self.QUERY).rows
        assert BftEngine(graph).execute(self.QUERY).rows == expected
        assert RecursiveEngine(graph).execute(self.QUERY).rows == expected

    def test_round_trip(self):
        q = parse(self.QUERY)
        assert "HAVING" in str(q)
        assert str(parse(str(q))) == str(q)
