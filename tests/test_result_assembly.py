"""Unit tests for result sinks, aggregation merging, and final assembly."""

import pytest

from repro.engine.result import (
    MachineSink,
    ResultSet,
    _AggAccumulator,
    assemble_results,
)
from repro.errors import ExecutionError
from repro.plan.stages import ProjectionSpec


def plain_plan(num_cols=2, distinct=False, order_by=(), limit=None):
    class Plan:
        pass

    plan = Plan()
    plan.has_aggregates = False
    plan.group_by = ()
    plan.order_by = order_by
    plan.limit = limit
    plan.distinct = distinct
    plan.projections = tuple(
        ProjectionSpec(name=f"c{i}", compiled=(lambda i: lambda s: s.ctx[i])(i))
        for i in range(num_cols)
    )
    return plan


class TestAccumulators:
    def test_count_ignores_none_unless_star(self):
        star = _AggAccumulator("count", distinct=False)
        star.update(None, is_star=True)
        assert star.result() == 1
        arg = _AggAccumulator("count", distinct=False)
        arg.update(None, is_star=False)
        arg.update(5, is_star=False)
        assert arg.result() == 1

    def test_sum_avg_min_max(self):
        for func, expected in [("sum", 9), ("avg", 3.0), ("min", 1), ("max", 5)]:
            acc = _AggAccumulator(func, distinct=False)
            for v in (1, 3, 5, None):
                acc.update(v, is_star=False)
            assert acc.result() == expected

    def test_empty_aggregates(self):
        assert _AggAccumulator("count", False).result() == 0
        assert _AggAccumulator("sum", False).result() is None
        assert _AggAccumulator("min", False).result() is None

    def test_distinct_count(self):
        acc = _AggAccumulator("count", distinct=True)
        for v in (1, 1, 2, None, 2):
            acc.update(v, is_star=False)
        assert acc.result() == 2

    def test_distinct_sum_and_avg(self):
        acc = _AggAccumulator("sum", distinct=True)
        for v in (2, 2, 3):
            acc.update(v, is_star=False)
        assert acc.result() == 5
        avg = _AggAccumulator("avg", distinct=True)
        for v in (2, 2, 4):
            avg.update(v, is_star=False)
        assert avg.result() == 3.0

    def test_merge(self):
        a = _AggAccumulator("min", False)
        b = _AggAccumulator("min", False)
        a.update(5, False)
        b.update(2, False)
        a.merge(b)
        assert a.result() == 2


class TestAssembly:
    def test_rows_merge_across_sinks_sorted(self):
        plan = plain_plan()
        s1, s2 = MachineSink(plan), MachineSink(plan)
        s1.add([3, "c"])
        s2.add([1, "a"])
        s2.add([2, "b"])
        rs = assemble_results(plan, [s1, s2])
        assert rs.rows == [(1, "a"), (2, "b"), (3, "c")]

    def test_distinct_dedups(self):
        plan = plain_plan(distinct=True)
        sink = MachineSink(plan)
        for row in ([1, "x"], [1, "x"], [2, "y"]):
            sink.add(row)
        rs = assemble_results(plan, [sink])
        assert len(rs) == 2

    def test_order_by_none_sorts_last(self):
        plan = plain_plan(order_by=((0, False),))
        sink = MachineSink(plan)
        for row in ([None, "n"], [2, "b"], [1, "a"]):
            sink.add(row)
        rs = assemble_results(plan, [sink])
        assert rs.column(0) == [1, 2, None]

    def test_order_by_descending_then_secondary(self):
        plan = plain_plan(order_by=((0, True), (1, False)))
        sink = MachineSink(plan)
        for row in ([1, "b"], [2, "z"], [1, "a"]):
            sink.add(row)
        rs = assemble_results(plan, [sink])
        assert rs.rows == [(2, "z"), (1, "a"), (1, "b")]

    def test_limit(self):
        plan = plain_plan(limit=2)
        sink = MachineSink(plan)
        for i in range(5):
            sink.add([i, "x"])
        rs = assemble_results(plan, [sink])
        assert len(rs) == 2

    def test_mixed_type_sort_is_stable_and_total(self):
        plan = plain_plan(order_by=((0, False),))
        sink = MachineSink(plan)
        for row in (["b", 1], [2, 2], [None, 3], ["a", 4], [1, 5]):
            sink.add(row)
        rs = assemble_results(plan, [sink])
        # numbers first, then strings, then NULLs
        assert rs.column(0) == [1, 2, "a", "b", None]


class TestResultSet:
    def test_scalar_requires_1x1(self):
        rs = ResultSet(["a", "b"], [(1, 2)])
        with pytest.raises(ExecutionError):
            rs.scalar()
        rs2 = ResultSet(["a"], [(1,), (2,)])
        with pytest.raises(ExecutionError):
            rs2.scalar()
        assert ResultSet(["a"], [(7,)]).scalar() == 7

    def test_column_by_name_and_index(self):
        rs = ResultSet(["x", "y"], [(1, "a"), (2, "b")])
        assert rs.column("y") == ["a", "b"]
        assert rs.column(0) == [1, 2]

    def test_to_dicts(self):
        rs = ResultSet(["x"], [(1,)])
        assert rs.to_dicts() == [{"x": 1}]

    def test_to_csv_string(self):
        rs = ResultSet(["x", "y"], [(1, "a,b"), (None, "c")])
        text = rs.to_csv()
        lines = text.strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == '1,"a,b"'  # embedded comma quoted

    def test_to_csv_file(self, tmp_path):
        rs = ResultSet(["x"], [(1,), (2,)])
        path = tmp_path / "out.csv"
        assert rs.to_csv(path) is None
        assert path.read_text().strip().splitlines() == ["x", "1", "2"]

    def test_to_json(self):
        import json

        rs = ResultSet(["x"], [(1,), (None,)])
        assert json.loads(rs.to_json()) == [{"x": 1}, {"x": None}]

    def test_repr(self):
        assert "rows=2" in repr(ResultSet(["x"], [(1,), (2,)]))


class TestGroupedAssembly:
    def make_grouped_plan(self):
        class Plan:
            pass

        plan = Plan()
        plan.has_aggregates = True
        plan.group_by = (lambda s: s.ctx[0],)
        plan.order_by = ()
        plan.limit = None
        plan.distinct = False
        plan.projections = (
            ProjectionSpec(name="key", compiled=lambda s: s.ctx[0]),
            ProjectionSpec(name="n", compiled=None, aggregate="count"),
            ProjectionSpec(name="total", compiled=lambda s: s.ctx[1], aggregate="sum"),
        )
        return plan

    def test_group_merge_across_machines(self):
        plan = self.make_grouped_plan()
        s1, s2 = MachineSink(plan), MachineSink(plan)
        s1.add(["a", 1])
        s1.add(["b", 2])
        s2.add(["a", 3])
        rs = assemble_results(plan, [s1, s2])
        assert dict((k, (n, t)) for k, n, t in rs.rows) == {
            "a": (2, 4),
            "b": (1, 2),
        }

    def test_group_keys_sorted_deterministically(self):
        plan = self.make_grouped_plan()
        sink = MachineSink(plan)
        for key in ("z", "a", "m"):
            sink.add([key, 1])
        rs = assemble_results(plan, [sink])
        assert rs.column("key") == ["a", "m", "z"]
