"""Regression battery: RPQ semantics on hand-analyzed graph motifs.

Every case documents its expected result with the full enumeration, runs on
all three engines and several machine counts, and exercises a distinct
structural hazard: diamonds (duplicate paths), self loops, parallel edges,
bipartite alternation, grids, and mixed-label alternation.
"""

import pytest

from repro import EngineConfig, GraphBuilder, RPQdEngine
from repro.baselines import BftEngine, RecursiveEngine


def run_everywhere(graph, query):
    """Execute on rpqd (1/2/4 machines) + both baselines; assert agreement;
    return the common scalar."""
    values = set()
    for machines in (1, 2, 4):
        values.add(
            RPQdEngine(graph, EngineConfig(num_machines=machines))
            .execute(query)
            .scalar()
        )
    values.add(BftEngine(graph).execute(query).scalar())
    values.add(RecursiveEngine(graph).execute(query).scalar())
    assert len(values) == 1, f"engines disagree: {values}"
    return values.pop()


class TestDiamond:
    """0 -> {1, 2} -> 3: two length-2 paths to the same destination."""

    @pytest.fixture(scope="class")
    def graph(self):
        b = GraphBuilder()
        for _ in range(4):
            b.add_vertex("N")
        for s, d in [(0, 1), (0, 2), (1, 3), (2, 3)]:
            b.add_edge(s, d, "E")
        return b.build()

    def test_reachability_dedups_duplicate_paths(self, graph):
        # From 0: {1, 2, 3}; from 1: {3}; from 2: {3}. Pairs, not paths.
        assert run_everywhere(graph, "SELECT COUNT(*) FROM MATCH (a)-/:E+/->(b)") == 5

    def test_fixed_pattern_keeps_both_paths(self, graph):
        # Homomorphic fixed 2-hop: 0->1->3 and 0->2->3 both count.
        assert run_everywhere(graph, "SELECT COUNT(*) FROM MATCH (a)->(b)->(c)") == 2

    def test_exact_two(self, graph):
        # Exactly 2 reps: only (0, 3) regardless of the two witnesses.
        assert run_everywhere(graph, "SELECT COUNT(*) FROM MATCH (a)-/:E{2}/->(b)") == 1


class TestSelfLoop:
    @pytest.fixture(scope="class")
    def graph(self):
        b = GraphBuilder()
        for _ in range(3):
            b.add_vertex("N")
        b.add_edge(0, 0, "E")  # self loop
        b.add_edge(0, 1, "E")
        b.add_edge(1, 2, "E")
        return b.build()

    def test_unbounded_terminates_and_counts_self(self, graph):
        # 0 reaches {0 (loop), 1, 2}; 1 reaches {2}; 2 reaches {}.
        assert run_everywhere(graph, "SELECT COUNT(*) FROM MATCH (a)-/:E+/->(b)") == 4

    def test_star_adds_zero_hop_pairs(self, graph):
        # * adds (v, v) for every vertex; (0,0) must not double count.
        assert run_everywhere(graph, "SELECT COUNT(*) FROM MATCH (a)-/:E*/->(b)") == 6

    def test_loop_enables_arbitrarily_long_walks(self, graph):
        # With min 5: 0 can loop 4x then step out: reaches {0, 1, 2};
        # other sources cannot build length >= 5 walks.
        assert run_everywhere(graph, "SELECT COUNT(*) FROM MATCH (a)-/:E{5,}/->(b)") == 3


class TestParallelEdges:
    @pytest.fixture(scope="class")
    def graph(self):
        b = GraphBuilder()
        for _ in range(2):
            b.add_vertex("N")
        b.add_edge(0, 1, "E")
        b.add_edge(0, 1, "E")  # parallel duplicate
        return b.build()

    def test_fixed_pattern_counts_each_edge(self, graph):
        assert run_everywhere(graph, "SELECT COUNT(*) FROM MATCH (a)-[:E]->(b)") == 2

    def test_reachability_counts_pair_once(self, graph):
        assert run_everywhere(graph, "SELECT COUNT(*) FROM MATCH (a)-/:E+/->(b)") == 1


class TestBipartiteAlternation:
    """A-vertices only point to B-vertices and vice versa: even path
    lengths return to the same side."""

    @pytest.fixture(scope="class")
    def graph(self):
        b = GraphBuilder()
        a_side = [b.add_vertex("A") for _ in range(3)]
        b_side = [b.add_vertex("B") for _ in range(3)]
        for i, a in enumerate(a_side):
            b.add_edge(a, b_side[i], "E")
            b.add_edge(a, b_side[(i + 1) % 3], "E")
        for i, bb in enumerate(b_side):
            b.add_edge(bb, a_side[(i + 2) % 3], "E")
        return b.build()

    def test_odd_lengths_land_on_b(self, graph):
        count = run_everywhere(
            graph, "SELECT COUNT(*) FROM MATCH (a:A)-/:E{1}/->(b:B)"
        )
        assert count == 6  # two outgoing edges per A vertex

    def test_even_lengths_filtered_by_label(self, graph):
        # Length-2 walks from A end on A; requiring :B yields nothing.
        assert (
            run_everywhere(graph, "SELECT COUNT(*) FROM MATCH (a:A)-/:E{2}/->(b:B)")
            == 0
        )

    def test_macro_enforcing_alternation(self, graph):
        count = run_everywhere(
            graph,
            "PATH step AS (x:A)-[:E]->(m:B)-[:E]->(y:A) "
            "SELECT COUNT(*) FROM MATCH (a:A)-/:step+/->(b:A)",
        )
        # Each A reaches every A (3x3 pairs) through repeated two-steps.
        assert count == 9


class TestGrid:
    """3x3 directed grid (right + down edges)."""

    @pytest.fixture(scope="class")
    def graph(self):
        b = GraphBuilder()
        ids = [[b.add_vertex("N", r=r, c=c) for c in range(3)] for r in range(3)]
        for r in range(3):
            for c in range(3):
                if c + 1 < 3:
                    b.add_edge(ids[r][c], ids[r][c + 1], "E")
                if r + 1 < 3:
                    b.add_edge(ids[r][c], ids[r + 1][c], "E")
        return b.build()

    def test_corner_reaches_everything(self, graph):
        count = run_everywhere(
            graph,
            "SELECT COUNT(*) FROM MATCH (a)-/:E+/->(b) WHERE a.r = 0 AND a.c = 0",
        )
        assert count == 8  # everything except itself

    def test_total_reachable_pairs(self, graph):
        # Pair (u, v) reachable iff v is right/down of u (inclusive order,
        # excluding equality): for each u at (r, c): (3-r)*(3-c) - 1.
        expected = sum((3 - r) * (3 - c) - 1 for r in range(3) for c in range(3))
        assert (
            run_everywhere(graph, "SELECT COUNT(*) FROM MATCH (a)-/:E+/->(b)")
            == expected
        )

    def test_exact_path_length_manhattan(self, graph):
        # Length-4 walks from the corner: only the far corner (2,2).
        count = run_everywhere(
            graph,
            "SELECT COUNT(*) FROM MATCH (a)-/:E{4}/->(b) WHERE a.r = 0 AND a.c = 0",
        )
        assert count == 1


class TestLabelAlternatives:
    @pytest.fixture(scope="class")
    def graph(self):
        b = GraphBuilder()
        for _ in range(4):
            b.add_vertex("N")
        b.add_edge(0, 1, "X")
        b.add_edge(1, 2, "Y")
        b.add_edge(2, 3, "X")
        return b.build()

    def test_single_label_rpq_respects_labels(self, graph):
        assert run_everywhere(graph, "SELECT COUNT(*) FROM MATCH (a)-/:X+/->(b)") == 2

    def test_macro_with_label_alternation(self, graph):
        count = run_everywhere(
            graph,
            "PATH any AS (x)-[:X|Y]->(y) "
            "SELECT COUNT(*) FROM MATCH (a)-/:any+/->(b)",
        )
        assert count == 6  # full chain reachability 0<1<2<3

    def test_concatenated_segments_model_regex(self, graph):
        # X+ then Y then X*: the language X+ Y X* over the chain.
        count = run_everywhere(
            graph,
            "SELECT COUNT(*) FROM MATCH (a)-/:X+/->(m)-[:Y]->(n)-/:X*/->(b)",
        )
        # a=0..m=1 (X+), n=2 (Y), b in {2, 3} (X*): 2 matches.
        assert count == 2
