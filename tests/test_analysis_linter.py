"""Tests for the protocol lint framework and each RPQ00x rule.

Every rule is exercised twice: a seeded violation snippet it must flag and
a clean snippet it must not.  The final test runs the full rule set over
the real package — ``python -m repro analyze`` must exit 0 on a clean
tree, so any rule regression shows up here first.
"""

import pathlib

import pytest

from repro.analysis import ALL_RULES, Linter, ProjectSource, lint_package
from repro.analysis.rules import (
    ConfigAttributeRule,
    CreditLeakRule,
    IndexAtomicityRule,
    MessageFieldDriftRule,
    RuntimeExceptionHygieneRule,
    TerminationCounterRule,
)

ROOT = pathlib.Path(__file__).resolve().parent.parent


def run_rule(rule_cls, sources):
    return Linter([rule_cls()]).run(ProjectSource.from_sources(sources))


MESSAGE_MODULE = """
from dataclasses import dataclass, field

@dataclass
class StatusMessage:
    src_machine: int
    dst_machine: int
    generation: int = 0
    sent: dict = field(default_factory=dict)
"""


class TestRPQ001MessageFieldDrift:
    def test_flags_unknown_field_and_aliasing(self):
        violations = run_rule(
            MessageFieldDriftRule,
            {
                "repro/runtime/message.py": MESSAGE_MODULE,
                "repro/runtime/termination.py": (
                    "def snapshot(self, dst):\n"
                    "    return StatusMessage(src_machine=self.id, dst_machine=dst,\n"
                    "                         sent=self.sent, bogus=1)\n"
                ),
            },
        )
        messages = [v.message for v in violations]
        assert any("no field 'bogus'" in m for m in messages)
        assert any("aliases live mutable state" in m for m in messages)

    def test_flags_positional_and_missing_required(self):
        violations = run_rule(
            MessageFieldDriftRule,
            {
                "repro/runtime/message.py": MESSAGE_MODULE,
                "repro/runtime/machine.py": (
                    "def send(self):\n    return StatusMessage(1)\n"
                ),
            },
        )
        messages = [v.message for v in violations]
        assert any("positional" in m for m in messages)
        assert any("required field 'dst_machine'" in m for m in messages)

    def test_clean_snippet_passes(self):
        violations = run_rule(
            MessageFieldDriftRule,
            {
                "repro/runtime/message.py": MESSAGE_MODULE,
                "repro/runtime/termination.py": (
                    "def snapshot(self, dst):\n"
                    "    return StatusMessage(src_machine=self.id, dst_machine=dst,\n"
                    "                         sent=dict(self.sent))\n"
                ),
            },
        )
        assert violations == []


class TestRPQ002CreditLeak:
    def test_flags_leaked_and_discarded_credits(self):
        violations = run_rule(
            CreditLeakRule,
            {
                "repro/runtime/machine.py": (
                    "def leak(self):\n"
                    "    credit = self.flow.try_acquire(1, 2, 3, True)\n"
                    "    return True\n"
                    "def discard(self):\n"
                    "    self.flow.try_acquire(1, 2, 3, True)\n"
                ),
            },
        )
        messages = [v.message for v in violations]
        assert any("it leaks" in m for m in messages)
        assert any("discarded" in m for m in messages)
        assert any("None-checked" in m for m in messages)

    def test_clean_ownership_transfer_passes(self):
        violations = run_rule(
            CreditLeakRule,
            {
                "repro/runtime/machine.py": (
                    "def flush(self, batch):\n"
                    "    credit = self.flow.try_acquire(1, 2, 3, True)\n"
                    "    if credit is None:\n"
                    "        return False\n"
                    "    batch.credit_key = credit\n"
                    "    return True\n"
                ),
            },
        )
        assert violations == []

    def test_release_ownership_passes(self):
        violations = run_rule(
            CreditLeakRule,
            {
                "repro/runtime/buffers.py": (
                    "def probe(self):\n"
                    "    credit = self.try_acquire(1, 2, 3, True)\n"
                    "    if credit is not None:\n"
                    "        self.release(credit)\n"
                ),
            },
        )
        assert violations == []


class TestRPQ003IndexAtomicity:
    INDEX_MODULE = (
        "class ReachabilityIndex:\n"
        "    def check_and_update(self, spid, v, depth):\n"
        "        return self._first_level.get(v)\n"
    )

    def test_flags_suspension_and_private_access(self):
        violations = run_rule(
            IndexAtomicityRule,
            {
                "repro/rpq/reachability.py": self.INDEX_MODULE,
                "repro/rpq/control.py": (
                    "def racy(self, index, spid, v, depth):\n"
                    "    old = index._first_level.get(v)\n"
                    "    yield\n"
                    "    index.check_and_update(spid, v, depth)\n"
                ),
            },
        )
        messages = [v.message for v in violations]
        assert any("_first_level" in m for m in messages)
        assert any("preemption point" in m for m in messages)

    def test_clean_atomic_call_passes(self):
        violations = run_rule(
            IndexAtomicityRule,
            {
                "repro/rpq/reachability.py": self.INDEX_MODULE,
                "repro/rpq/control.py": (
                    "def on_entry(self, index, spid, v, depth):\n"
                    "    return index.check_and_update(spid, v, depth)\n"
                ),
            },
        )
        assert violations == []


class TestRPQ004TerminationCounters:
    TRACKER_MODULE = (
        "class TerminationTracker:\n"
        "    def record_sent(self, stage, depth):\n"
        "        self.sent[(stage, depth)] += 1\n"
    )

    def test_flags_direct_mutation(self):
        violations = run_rule(
            TerminationCounterRule,
            {
                "repro/runtime/termination.py": self.TRACKER_MODULE,
                "repro/runtime/machine.py": (
                    "def boot(self, roots):\n"
                    "    self.tracker.sent[(0, 0)] += len(roots)\n"
                    "def wipe(self):\n"
                    "    self.tracker.processed.clear()\n"
                ),
            },
        )
        assert len(violations) == 2
        assert all(v.rule_id == "RPQ004" for v in violations)

    def test_tracker_methods_pass(self):
        violations = run_rule(
            TerminationCounterRule,
            {
                "repro/runtime/termination.py": self.TRACKER_MODULE,
                "repro/runtime/machine.py": (
                    "def boot(self, roots):\n"
                    "    self.tracker.record_bootstrap(len(roots))\n"
                    "def read(self, snap):\n"
                    "    return snap.sent, snap.processed\n"
                ),
            },
        )
        assert violations == []


class TestRPQ005ExceptionHygiene:
    def test_flags_bare_swallow_and_broad(self):
        violations = run_rule(
            RuntimeExceptionHygieneRule,
            {
                "repro/runtime/worker.py": (
                    "def a():\n"
                    "    try:\n"
                    "        step()\n"
                    "    except:\n"
                    "        pass\n"
                    "def b():\n"
                    "    try:\n"
                    "        step()\n"
                    "    except ValueError:\n"
                    "        pass\n"
                    "def c():\n"
                    "    try:\n"
                    "        step()\n"
                    "    except Exception:\n"
                    "        log()\n"
                ),
            },
        )
        assert len(violations) == 3

    def test_outside_runtime_is_ignored(self):
        violations = run_rule(
            RuntimeExceptionHygieneRule,
            {
                "repro/graph/loader.py": (
                    "def load():\n"
                    "    try:\n"
                    "        parse()\n"
                    "    except:\n"
                    "        pass\n"
                ),
            },
        )
        assert violations == []

    def test_reraise_passes(self):
        violations = run_rule(
            RuntimeExceptionHygieneRule,
            {
                "repro/runtime/worker.py": (
                    "def a():\n"
                    "    try:\n"
                    "        step()\n"
                    "    except Exception as exc:\n"
                    "        raise RuntimeError('bad') from exc\n"
                ),
            },
        )
        assert violations == []


class TestRPQ006ConfigAttributes:
    CONFIG_MODULE = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class CostModel:\n"
        "    edge_traverse: float = 1.0\n"
        "@dataclass\n"
        "class EngineConfig:\n"
        "    num_machines: int = 4\n"
        "    cost: CostModel = None\n"
        "    def with_(self, **kw):\n"
        "        pass\n"
    )

    def test_flags_misspelled_fields(self):
        violations = run_rule(
            ConfigAttributeRule,
            {
                "repro/config.py": self.CONFIG_MODULE,
                "repro/runtime/machine.py": (
                    "def f(config):\n"
                    "    bad = config.bufers_per_machine\n"
                    "    worse = config.cost.edge_cost\n"
                ),
            },
        )
        assert len(violations) == 2
        assert "bufers_per_machine" in violations[0].message

    def test_real_fields_and_methods_pass(self):
        violations = run_rule(
            ConfigAttributeRule,
            {
                "repro/config.py": self.CONFIG_MODULE,
                "repro/runtime/machine.py": (
                    "def f(config, run_config):\n"
                    "    a = config.num_machines\n"
                    "    b = config.cost.edge_traverse\n"
                    "    c = run_config.with_()\n"
                    "    return a, b, c\n"
                ),
            },
        )
        assert violations == []


class TestFrameworkAndRepo:
    def test_rule_catalogue_is_complete(self):
        ids = [rule_cls.rule_id for rule_cls in ALL_RULES]
        assert ids == [f"RPQ00{i}" for i in range(1, 7)]

    def test_violations_sorted_and_formatted(self):
        violations = run_rule(
            RuntimeExceptionHygieneRule,
            {
                "repro/runtime/z.py": "try:\n    x()\nexcept:\n    pass\n",
                "repro/runtime/a.py": "try:\n    x()\nexcept:\n    pass\n",
            },
        )
        assert [v.path for v in violations] == ["repro/runtime/a.py", "repro/runtime/z.py"]
        assert violations[0].format().startswith("repro/runtime/a.py:3: RPQ005")

    def test_repo_is_clean(self):
        violations = lint_package(ROOT / "src" / "repro")
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_cli_analyze_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "protocol lint: ok" in out

    def test_cli_list_rules(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 7):
            assert f"RPQ00{i}" in out

    def test_cli_analyze_rejects_missing_path(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["analyze", "--no-external", str(tmp_path / "gone")]) == 2
        assert "no such package directory" in capsys.readouterr().out

    def test_cli_analyze_flags_seeded_violation(self, tmp_path, capsys):
        pkg = tmp_path / "badpkg"
        (pkg / "runtime").mkdir(parents=True)
        (pkg / "runtime" / "worker.py").write_text(
            "def f():\n    try:\n        g()\n    except:\n        pass\n"
        )
        from repro.cli import main

        assert main(["analyze", "--no-external", str(pkg)]) == 1
        assert "RPQ005" in capsys.readouterr().out
