"""Flow-control overflow-bucket coverage (paper Section 3.3).

Depths beyond ``rpq_flow_depth`` draw from a shared per-stage allowance and
fall through to lazily-created per-depth *overflow* buckets once the shared
bucket is exhausted.  These tests pin down the fall-through order, credit
conservation across the overflow path, agreement between ``capacity_of``
and the grants ``try_acquire`` actually makes, and the regression that
idle overflow buckets are dropped from the in-flight map on release
instead of accumulating zero-count entries forever.
"""

import pytest

from repro import EngineConfig, GraphBuilder
from repro.pgql import parse
from repro.plan import compile_query
from repro.runtime.buffers import SHARED, FlowControl
from repro.runtime.stats import MachineStats

#: The canonical RPQ plan's single remote target stage (see
#: test_runtime_components.TestRemoteTargets).
PATH_STAGE = 3

CONFIG = EngineConfig(
    num_machines=2,
    buffers_per_machine=32,
    rpq_flow_depth=2,
    rpq_shared_credits=3,
    rpq_overflow_per_depth=1,
)


@pytest.fixture(scope="module")
def rpq_plan():
    b = GraphBuilder()
    for i in range(4):
        b.add_vertex("N", idx=i)
    b.add_edge(0, 1, "E")
    g = b.build()
    return compile_query(parse("SELECT COUNT(*) FROM MATCH (a)-/:E+/->(b)"), g)


@pytest.fixture
def flow(rpq_plan):
    return FlowControl(0, rpq_plan, CONFIG, MachineStats())


DEEP = 7  # any depth >= CONFIG.rpq_flow_depth


class TestOverflowFallThrough:
    def test_shared_exhaustion_falls_through_to_overflow(self, flow):
        shared_key = (1, PATH_STAGE, SHARED)
        for _ in range(CONFIG.rpq_shared_credits):
            assert flow.try_acquire(1, PATH_STAGE, DEEP, True) == shared_key
        # Shared exhausted: the next grant creates the per-depth overflow
        # bucket lazily — it did not exist before the fall-through.
        assert (1, PATH_STAGE, ("ovf", DEEP)) not in flow._in_flight
        ovf = flow.try_acquire(1, PATH_STAGE, DEEP, True)
        assert ovf == (1, PATH_STAGE, ("ovf", DEEP))
        # One overflow credit per depth: the next acquire at this depth
        # fails, while a different deep depth still gets its own bucket.
        assert flow.try_acquire(1, PATH_STAGE, DEEP, True) is None
        assert flow.try_acquire(1, PATH_STAGE, DEEP + 1, True) == (
            1,
            PATH_STAGE,
            ("ovf", DEEP + 1),
        )

    def test_shallow_depths_never_use_overflow(self, flow):
        cap = flow.capacity_of(1, PATH_STAGE, 0, True)
        for _ in range(cap):
            key = flow.try_acquire(1, PATH_STAGE, 0, True)
            assert key == (1, PATH_STAGE, 0)
        # Dedicated bucket exhausted: no overflow fall-through below D.
        assert flow.try_acquire(1, PATH_STAGE, 0, True) is None

    def test_capacity_of_agrees_with_grants(self, flow):
        for depth in (0, 1, DEEP):
            expected = flow.capacity_of(1, PATH_STAGE, depth, True)
            granted = 0
            while flow.try_acquire(1, PATH_STAGE, depth, True) is not None:
                granted += 1
            assert granted == expected, f"depth {depth}"
            # Exhausting a deep depth consumes the shared allowance, so
            # reset between depths to keep each measurement independent.
            for key, used in list(flow._in_flight.items()):
                for _ in range(used):
                    flow.release(key)

    def test_capacity_of_shared_includes_overflow(self, flow):
        assert (
            flow.capacity_of(1, PATH_STAGE, DEEP, True)
            == CONFIG.rpq_shared_credits + CONFIG.rpq_overflow_per_depth
        )


class TestOverflowRelease:
    def test_release_drops_idle_overflow_bucket(self, flow):
        """Regression: zero-count overflow keys must leave the map."""
        for _ in range(CONFIG.rpq_shared_credits):
            flow.try_acquire(1, PATH_STAGE, DEEP, True)
        ovf = flow.try_acquire(1, PATH_STAGE, DEEP, True)
        assert flow._in_flight[ovf] == 1
        flow.release(ovf)
        assert ovf not in flow._in_flight

    def test_configured_buckets_keep_zero_entries(self, flow):
        """Only lazily-created buckets are dropped; configured ones stay."""
        key = flow.try_acquire(1, PATH_STAGE, 0, True)
        flow.release(key)
        assert flow._in_flight[key] == 0
        assert key in flow._capacity

    def test_reacquire_after_drop(self, flow):
        for _ in range(CONFIG.rpq_shared_credits):
            flow.try_acquire(1, PATH_STAGE, DEEP, True)
        ovf = flow.try_acquire(1, PATH_STAGE, DEEP, True)
        flow.release(ovf)
        assert flow.try_acquire(1, PATH_STAGE, DEEP, True) == ovf
        assert flow._in_flight[ovf] == 1

    def test_many_depths_do_not_accumulate_entries(self, flow):
        """An unbounded-RPQ run visiting ever-deeper depths stays bounded."""
        for _ in range(CONFIG.rpq_shared_credits):
            flow.try_acquire(1, PATH_STAGE, DEEP, True)
        before = len(flow._in_flight)
        for depth in range(DEEP, DEEP + 50):
            key = flow.try_acquire(1, PATH_STAGE, depth, True)
            assert key == (1, PATH_STAGE, ("ovf", depth))
            flow.release(key)
        assert len(flow._in_flight) == before

    def test_credits_conserved_through_overflow_cycle(self, flow):
        keys = []
        for depth in (0, 1, DEEP, DEEP, DEEP, DEEP, DEEP + 1):
            key = flow.try_acquire(1, PATH_STAGE, depth, True)
            if key is not None:
                keys.append(key)
        assert flow.in_flight == len(keys)
        assert sum(flow._in_flight.values()) == flow.in_flight
        for key in keys:
            flow.release(key)
        assert flow.in_flight == 0
        assert sum(flow._in_flight.values()) == 0
