"""White-box tests for worker/machine mechanics: frames, undo logs,
bootstrap sharing, nested blocked jobs, and batch accounting."""

import pytest

from repro import EngineConfig, GraphBuilder, RPQdEngine
from repro.engine.result import MachineSink
from repro.graph.generators import chain_graph, star_graph
from repro.runtime.scheduler import QueryExecution
from repro.runtime.worker import Frame, Job, MAX_NESTED_JOBS, Worker


def make_execution(graph, query, config):
    engine = RPQdEngine(graph, config)
    plan = engine.compile(query)
    sinks = [MachineSink(plan) for _ in range(config.num_machines)]
    return (
        QueryExecution(engine.dgraph, plan, config, lambda m: sinks[m]),
        sinks,
        plan,
    )


class TestFrame:
    def test_initial_state(self):
        f = Frame(3, 17)
        assert f.stage_idx == 3
        assert f.vertex == 17
        assert f.phase == 0
        assert f.undo == []
        assert f.entry_mode is None

    def test_entry_mode(self):
        f = Frame(1, 0, entry_mode="advance")
        assert f.entry_mode == "advance"


class TestUndoLog:
    def test_pop_restores_slots_in_reverse_order(self):
        g = chain_graph(3)
        config = EngineConfig(num_machines=1)
        ex, _sinks, plan = make_execution(
            g, "SELECT COUNT(*) FROM MATCH (a)-[:NEXT]->(b)", config
        )
        worker = ex.machines[0].workers[0]
        job = Job("root", ctx=[0, 0, 0])
        frame = Frame(0, 0)
        frame.undo.append((0, "first"))
        frame.undo.append((0, "second"))  # later write of the same slot
        job.stack.append(frame)
        worker._pop(job)
        # Reverse replay: the oldest saved value wins.
        assert job.ctx[0] == "first"


class TestBootstrapSharing:
    def test_workers_share_the_root_queue(self):
        # A star: one heavy hub plus leaves. With the shared queue, every
        # worker can contribute; all roots get processed exactly once.
        g = star_graph(30)
        config = EngineConfig(num_machines=1, workers_per_machine=4)
        ex, _sinks, _plan = make_execution(
            g, "SELECT COUNT(*) FROM MATCH (a)-[:LINK]->(b)", config
        )
        stats = ex.run()
        m = ex.machines[0]
        assert not m.bootstrap_pending()
        assert m.stats.bootstrapped == 31
        assert stats.outputs == 30

    def test_single_vertex_bootstrap_only_on_owner(self):
        g = chain_graph(10)
        config = EngineConfig(num_machines=2)
        ex, _sinks, _plan = make_execution(
            g, "SELECT COUNT(*) FROM MATCH (a)->(b) WHERE id(a) = 3", config
        )
        owner = ex.machines[3 % 2]
        other = ex.machines[(3 + 1) % 2]
        assert owner.bootstrap_pending()
        assert not other.bootstrap_pending()
        ex.run()
        assert owner.stats.bootstrapped == 1
        assert other.stats.bootstrapped == 0


class TestBatchAccounting:
    def test_done_sent_at_absorption_and_processed_at_completion(self):
        g = chain_graph(20)
        config = EngineConfig(num_machines=2, batch_size=4)
        ex, _sinks, _plan = make_execution(
            g, "SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)", config
        )
        ex.run()
        for m in ex.machines:
            # Every absorbed batch was eventually completed.
            assert m._absorbed == 0
            # DONEs match the batches this machine received and absorbed.
            received = sum(
                other.tracker.sent[key]
                for other in ex.machines
                if other is not m
                for key in other.tracker.sent
            )
        total_sent = sum(m.stats.batches_sent for m in ex.machines)
        total_done = sum(m.stats.done_messages for m in ex.machines)
        assert total_done == total_sent

    def test_sent_equals_processed_after_run(self):
        g = chain_graph(15)
        config = EngineConfig(num_machines=3)
        ex, _sinks, _plan = make_execution(
            g, "SELECT COUNT(*) FROM MATCH (a)-/:NEXT{1,4}/->(b)", config
        )
        ex.run()
        from collections import Counter

        sent = Counter()
        processed = Counter()
        for m in ex.machines:
            sent.update(m.tracker.sent)
            processed.update(m.tracker.processed)
        assert sent == processed

    def test_credits_all_returned(self):
        g = chain_graph(25)
        config = EngineConfig(num_machines=4, batch_size=2)
        ex, _sinks, _plan = make_execution(
            g, "SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)", config
        )
        ex.run()
        for m in ex.machines:
            assert m.flow.in_flight == 0


class TestNestedJobs:
    def test_nesting_cap_constant_is_sane(self):
        assert 2 <= MAX_NESTED_JOBS <= 64

    def test_worker_idle_semantics(self):
        g = chain_graph(4)
        config = EngineConfig(num_machines=1)
        ex, _sinks, _plan = make_execution(
            g, "SELECT COUNT(*) FROM MATCH (a)->(b)", config
        )
        worker = ex.machines[0].workers[0]
        assert not worker.idle  # bootstrap pending
        ex.run()
        assert worker.idle
