"""Tests for the incremental termination protocol (paper Section 3.4)."""

import pytest

from repro import EngineConfig, RPQdEngine
from repro.graph import GraphBuilder
from repro.graph.generators import chain_graph, random_graph
from repro.pgql import parse
from repro.plan import compile_query
from repro.runtime.termination import (
    TerminationEvaluator,
    TerminationProtocol,
    TerminationTracker,
)


def two_stage_plan():
    b = GraphBuilder()
    b.add_vertex("N")
    b.add_vertex("N")
    b.add_edge(0, 1, "E")
    g = b.build()
    return compile_query(parse("SELECT COUNT(*) FROM MATCH (a)-[:E]->(b)"), g)


def rpq_plan():
    b = GraphBuilder()
    b.add_vertex("N")
    b.add_vertex("N")
    b.add_edge(0, 1, "E")
    g = b.build()
    return compile_query(parse("SELECT COUNT(*) FROM MATCH (a)-/:E+/->(b)"), g)


def snapshots(trackers):
    return [t.snapshot(0) for t in trackers]


class TestTracker:
    def test_counters(self):
        t = TerminationTracker(0)
        t.record_sent(1, 0)
        t.record_sent(1, 0)
        t.record_processed(1, 0)
        assert t.sent[(1, 0)] == 2
        assert t.processed[(1, 0)] == 1

    def test_observe_depth_is_monotone(self):
        t = TerminationTracker(0)
        t.observe_depth(0, 3)
        t.observe_depth(0, 1)
        assert t.max_depths[0] == 3


class TestEvaluator:
    def test_fixed_plan_terminates_when_counts_match(self):
        plan = two_stage_plan()
        ev = TerminationEvaluator(plan)
        t0, t1 = TerminationTracker(0), TerminationTracker(1)
        t0.sent[(0, 0)] = 2  # bootstrap units
        t0.processed[(0, 0)] = 2
        t0.record_sent(1, 0)
        t1.record_processed(1, 0)
        terminated, all_done = ev.evaluate(snapshots([t0, t1]))
        assert (0, 0) in terminated
        assert (1, 0) in terminated
        assert all_done

    def test_unprocessed_message_blocks_stage(self):
        plan = two_stage_plan()
        ev = TerminationEvaluator(plan)
        t0, t1 = TerminationTracker(0), TerminationTracker(1)
        t0.sent[(0, 0)] = 1
        t0.processed[(0, 0)] = 1
        t0.record_sent(1, 0)  # batch in flight, never processed
        terminated, all_done = ev.evaluate(snapshots([t0, t1]))
        assert (0, 0) in terminated
        assert (1, 0) not in terminated
        assert not all_done

    def test_unfinished_producer_blocks_consumer_even_with_equal_counts(self):
        # The incremental condition: stage 1 counts are 0==0, but stage 0 is
        # still running so stage 1 must NOT be declared terminated.
        plan = two_stage_plan()
        ev = TerminationEvaluator(plan)
        t0 = TerminationTracker(0)
        t0.sent[(0, 0)] = 5
        t0.processed[(0, 0)] = 3  # bootstrap still in progress
        terminated, all_done = ev.evaluate(snapshots([t0]))
        assert (0, 0) not in terminated
        assert (1, 0) not in terminated
        assert not all_done

    def test_rpq_depth_recursion(self):
        plan = rpq_plan()
        ev = TerminationEvaluator(plan)
        t = TerminationTracker(0)
        t.sent[(0, 0)] = 2
        t.processed[(0, 0)] = 2
        t.observe_depth(0, 1)
        terminated, all_done = ev.evaluate(snapshots([t]))
        control = next(s.index for s in plan.stages if s.rpq is not None)
        assert (control, 0) in terminated
        assert (control, 1) in terminated
        assert all_done

    def test_no_consensus_blocks_exit_stage(self):
        plan = rpq_plan()
        ev = TerminationEvaluator(plan)
        t0, t1 = TerminationTracker(0), TerminationTracker(1)
        t0.sent[(0, 0)] = 1
        t0.processed[(0, 0)] = 1
        t0.observe_depth(0, 2)
        t1.observe_depth(0, 1)  # machines disagree on max depth
        terminated, all_done = ev.evaluate(snapshots([t0, t1]))
        exit_stage = plan.rpq_specs()[0].exit_stage
        assert (exit_stage, 0) not in terminated
        assert not all_done

    def test_consensus_unblocks_exit_stage(self):
        plan = rpq_plan()
        ev = TerminationEvaluator(plan)
        t0, t1 = TerminationTracker(0), TerminationTracker(1)
        t0.sent[(0, 0)] = 1
        t0.processed[(0, 0)] = 1
        t0.observe_depth(0, 2)
        t1.observe_depth(0, 2)
        terminated, all_done = ev.evaluate(snapshots([t0, t1]))
        exit_stage = plan.rpq_specs()[0].exit_stage
        assert (exit_stage, 0) in terminated
        assert all_done


class TestProtocolConfirmation:
    def test_requires_two_matching_evaluations_with_fresh_snapshots(self):
        plan = two_stage_plan()
        t0 = TerminationTracker(0)
        t1 = TerminationTracker(1)
        t0.sent[(0, 0)] = 1
        t0.processed[(0, 0)] = 1
        protocol = TerminationProtocol(0, plan, 2, t0)

        t1.generation = 1
        protocol.on_status(t1.snapshot(0))
        assert protocol.check() is False  # first success: candidate only
        assert protocol.check() is False  # same generations: no confirm
        t1.generation = 2
        protocol.on_status(t1.snapshot(0))
        # Own snapshot is live; remote generation advanced with identical
        # totals -> confirmation... but own generation must also advance.
        t0.generation = 1
        assert protocol.check() is True
        assert protocol.concluded

    def test_changed_totals_reset_candidate(self):
        plan = two_stage_plan()
        t0 = TerminationTracker(0)
        t1 = TerminationTracker(1)
        t0.sent[(0, 0)] = 1
        t0.processed[(0, 0)] = 1
        protocol = TerminationProtocol(0, plan, 2, t0)
        t1.generation = 1
        protocol.on_status(t1.snapshot(0))
        assert protocol.check() is False
        # New work shows up: totals change, candidate must reset.
        t0.record_sent(1, 0)
        t0.generation = 1
        t1.generation = 2
        protocol.on_status(t1.snapshot(0))
        assert protocol.check() is False
        assert protocol._candidate is None

    def test_status_propagates_max_depth(self):
        plan = rpq_plan()
        t0 = TerminationTracker(0)
        protocol = TerminationProtocol(0, plan, 2, t0)
        t1 = TerminationTracker(1)
        t1.observe_depth(0, 7)
        protocol.on_status(t1.snapshot(0))
        assert t0.max_depths[0] == 7  # consensus mechanics: adopt larger max


class TestProtocolEndToEnd:
    @pytest.mark.parametrize("machines", [1, 2, 4])
    def test_protocol_never_concludes_early(self, machines):
        # The scheduler raises if the protocol concludes while ground truth
        # says work remains; a clean run implies soundness held throughout.
        g = random_graph(40, 120, seed=13)
        eng = RPQdEngine(g, EngineConfig(num_machines=machines))
        r = eng.execute("SELECT COUNT(*) FROM MATCH (a)-/:LINK{1,3}/->(b)")
        assert r.scalar() > 0

    def test_protocol_with_delayed_status_messages(self):
        from repro.engine.result import MachineSink
        from repro.runtime.scheduler import QueryExecution

        g = chain_graph(12)
        eng = RPQdEngine(g, EngineConfig(num_machines=3))
        plan = eng.compile("SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)")
        sinks = [MachineSink(plan) for _ in range(3)]
        ex = QueryExecution(eng.dgraph, plan, eng.config, lambda m: sinks[m])
        from repro.runtime.message import StatusMessage

        ex.network.extra_delay_fn = (
            lambda m: 7 if isinstance(m, StatusMessage) and m.seq % 3 == 0 else 0
        )
        stats = ex.run()
        assert stats.outputs == 66  # 45 pairs... depends; see below

    def test_duplicated_status_messages_are_harmless(self):
        from repro.engine.result import MachineSink
        from repro.runtime.scheduler import QueryExecution
        from repro.runtime.message import StatusMessage

        g = chain_graph(12)
        eng = RPQdEngine(g, EngineConfig(num_machines=3))
        plan = eng.compile("SELECT COUNT(*) FROM MATCH (a)-/:NEXT+/->(b)")
        sinks = [MachineSink(plan) for _ in range(3)]
        ex = QueryExecution(eng.dgraph, plan, eng.config, lambda m: sinks[m])
        ex.network.duplicate_fn = lambda m: isinstance(m, StatusMessage)
        stats = ex.run()
        assert stats.outputs == 66
