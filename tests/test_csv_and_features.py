"""Tests for the CSV loader, ALL_DIFFERENT, and LIMIT/OFFSET."""

import pytest

from repro import EngineConfig, GraphBuilder, RPQdEngine
from repro.baselines import BftEngine
from repro.errors import GraphError, PlanningError
from repro.graph import load_csv_graph
from repro.pgql import parse


VERTICES = """id,label,labels,name,age,vip
p1,Person,,Ann,34,true
p2,Person,,Bo,29,false
m1,Post,Message,,,
"""

EDGES = """src,dst,label,since
p1,p2,KNOWS,2019
m1,p1,HAS_CREATOR,
"""


@pytest.fixture
def csv_graph(tmp_path):
    vpath = tmp_path / "v.csv"
    epath = tmp_path / "e.csv"
    vpath.write_text(VERTICES)
    epath.write_text(EDGES)
    return load_csv_graph(vpath, epath)


class TestCsvLoader:
    def test_counts_and_mapping(self, csv_graph):
        graph, id_map = csv_graph
        assert graph.num_vertices == 3
        assert graph.num_edges == 2
        assert set(id_map) == {"p1", "p2", "m1"}

    def test_auto_typing(self, csv_graph):
        graph, id_map = csv_graph
        assert graph.vprops.get("age", id_map["p1"]) == 34
        assert graph.vprops.get("vip", id_map["p1"]) is True
        assert graph.vprops.get("vip", id_map["p2"]) is False
        assert graph.vprops.get("name", id_map["m1"]) is None
        assert graph.eprops.get("since", 0) == 2019

    def test_extra_labels(self, csv_graph):
        graph, id_map = csv_graph
        message = graph.vertex_labels.id_of("Message")
        assert graph.vertex_has_label(id_map["m1"], message)

    def test_queryable(self, csv_graph):
        graph, _ = csv_graph
        engine = RPQdEngine(graph, EngineConfig(num_machines=2))
        r = engine.execute(
            "SELECT a.name FROM MATCH (a:Person)-[:KNOWS]->(b:Person)"
        )
        assert r.rows == [("Ann",)]

    def test_duplicate_id_rejected(self, tmp_path):
        vpath = tmp_path / "v.csv"
        vpath.write_text("id,label\nx,N\nx,N\n")
        epath = tmp_path / "e.csv"
        epath.write_text("src,dst,label\n")
        with pytest.raises(GraphError):
            load_csv_graph(vpath, epath)

    def test_unknown_endpoint_rejected(self, tmp_path):
        vpath = tmp_path / "v.csv"
        vpath.write_text("id,label\nx,N\n")
        epath = tmp_path / "e.csv"
        epath.write_text("src,dst,label\nx,nope,E\n")
        with pytest.raises(GraphError):
            load_csv_graph(vpath, epath)

    def test_missing_columns_rejected(self, tmp_path):
        vpath = tmp_path / "v.csv"
        vpath.write_text("name,label\nx,N\n")
        epath = tmp_path / "e.csv"
        epath.write_text("src,dst,label\n")
        with pytest.raises(GraphError):
            load_csv_graph(vpath, epath)


@pytest.fixture(scope="module")
def triangle_graph():
    b = GraphBuilder()
    for i in range(4):
        b.add_vertex("N", idx=i)
    for s, d in [(0, 1), (1, 2), (2, 0), (0, 0)]:  # triangle + self loop
        b.add_edge(s, d, "E")
    return b.build()


class TestAllDifferent:
    def test_excludes_repeated_vertices(self, triangle_graph):
        engine = RPQdEngine(triangle_graph, EngineConfig(num_machines=2))
        plain = engine.execute("SELECT COUNT(*) FROM MATCH (a)-[:E]->(b)-[:E]->(c)")
        distinct = engine.execute(
            "SELECT COUNT(*) FROM MATCH (a)-[:E]->(b)-[:E]->(c) "
            "WHERE all_different(a, b, c)"
        )
        assert distinct.scalar() < plain.scalar()
        # Triangle walks with distinct vertices: the 3 rotations.
        assert distinct.scalar() == 3

    def test_baseline_agrees(self, triangle_graph):
        q = (
            "SELECT COUNT(*) FROM MATCH (a)-[:E]->(b)-[:E]->(c) "
            "WHERE all_different(a, b, c)"
        )
        rpqd = RPQdEngine(triangle_graph, EngineConfig(num_machines=2)).execute(q)
        assert BftEngine(triangle_graph).execute(q).scalar() == rpqd.scalar()

    def test_requires_variables(self, triangle_graph):
        engine = RPQdEngine(triangle_graph, EngineConfig(num_machines=1))
        with pytest.raises(PlanningError):
            engine.execute(
                "SELECT COUNT(*) FROM MATCH (a)-[:E]->(b) WHERE all_different(a.idx, b)"
            )


class TestLimitOffset:
    @pytest.fixture(scope="class")
    def engine(self):
        b = GraphBuilder()
        for i in range(6):
            b.add_vertex("N", idx=i)
        for i in range(5):
            b.add_edge(i, i + 1, "E")
        return RPQdEngine(b.build(), EngineConfig(num_machines=2))

    def test_offset_parses_and_round_trips(self):
        q = parse("SELECT a.idx FROM MATCH (a) ORDER BY a.idx LIMIT 2 OFFSET 3")
        assert q.limit == 2 and q.offset == 3
        assert "OFFSET 3" in str(q)

    def test_offset_applies_after_order(self, engine):
        r = engine.execute(
            "SELECT a.idx AS i FROM MATCH (a:N) ORDER BY i LIMIT 2 OFFSET 3"
        )
        assert r.column("i") == [3, 4]

    def test_offset_past_end(self, engine):
        r = engine.execute(
            "SELECT a.idx AS i FROM MATCH (a:N) ORDER BY i LIMIT 5 OFFSET 10"
        )
        assert r.rows == []

    def test_baseline_offset(self, engine):
        r = BftEngine(engine.graph).execute(
            "SELECT a.idx AS i FROM MATCH (a:N) ORDER BY i LIMIT 2 OFFSET 1"
        )
        assert r.column("i") == [1, 2]
