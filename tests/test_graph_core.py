"""Unit tests for the graph substrate: builder, CSR, labels, properties."""

import pytest

from repro.errors import GraphError
from repro.graph import Direction, GraphBuilder, NO_EDGE
from repro.graph.generators import chain_graph, complete_graph, cycle_graph


@pytest.fixture
def small_graph():
    b = GraphBuilder()
    a = b.add_vertex("Person", name="Alice", age=30)
    c = b.add_vertex("Person", name="Bob", age=25)
    d = b.add_vertex("Post", extra_labels=("Message",), content="hi")
    b.add_edge(a, c, "KNOWS", since=2015)
    b.add_edge(c, a, "KNOWS")
    b.add_edge(a, d, "LIKES")
    return b.build()


class TestBuilder:
    def test_counts(self, small_graph):
        assert small_graph.num_vertices == 3
        assert small_graph.num_edges == 3

    def test_vertex_ids_are_dense(self):
        b = GraphBuilder()
        ids = [b.add_vertex("N") for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_edge_endpoint_validation(self):
        b = GraphBuilder()
        b.add_vertex("N")
        with pytest.raises(GraphError):
            b.add_edge(0, 99, "E")
        with pytest.raises(GraphError):
            b.add_edge(-1, 0, "E")

    def test_build_consumes_builder(self):
        b = GraphBuilder()
        b.add_vertex("N")
        b.build()
        with pytest.raises(GraphError):
            b.add_vertex("N")
        with pytest.raises(GraphError):
            b.build()

    def test_set_vertex_property_after_add(self):
        b = GraphBuilder()
        v = b.add_vertex("N")
        b.set_vertex_property(v, "color", "red")
        g = b.build()
        assert g.vprops.get("color", v) == "red"


class TestLabels:
    def test_primary_label(self, small_graph):
        assert small_graph.vertex_label_name(0) == "Person"
        assert small_graph.vertex_label_name(2) == "Post"

    def test_extra_labels(self, small_graph):
        message = small_graph.vertex_labels.id_of("Message")
        post = small_graph.vertex_labels.id_of("Post")
        assert small_graph.vertex_has_label(2, message)
        assert small_graph.vertex_has_label(2, post)
        assert not small_graph.vertex_has_label(0, message)

    def test_label_lookup_is_case_insensitive(self, small_graph):
        assert small_graph.vertex_labels.id_of("person") == small_graph.vertex_labels.id_of(
            "PERSON"
        )

    def test_unknown_label_is_none(self, small_graph):
        assert small_graph.vertex_labels.id_of("Alien") is None

    def test_vertices_with_label(self, small_graph):
        person = small_graph.vertex_labels.id_of("Person")
        assert list(small_graph.vertices_with_label(person)) == [0, 1]

    def test_label_histogram(self, small_graph):
        assert small_graph.label_histogram() == {"Person": 2, "Post": 1}


class TestProperties:
    def test_vertex_property_read(self, small_graph):
        assert small_graph.vprops.get("name", 0) == "Alice"
        assert small_graph.vprops.get("age", 1) == 25

    def test_missing_property_is_none(self, small_graph):
        assert small_graph.vprops.get("age", 2) is None
        assert small_graph.vprops.get("nonexistent", 0) is None

    def test_edge_property(self, small_graph):
        assert small_graph.eprops.get("since", 0) == 2015
        assert small_graph.eprops.get("since", 1) is None


class TestTopology:
    def test_out_neighbors(self, small_graph):
        nbrs = sorted(n for n, _ in small_graph.neighbors(0, Direction.OUT))
        assert nbrs == [1, 2]

    def test_in_neighbors(self, small_graph):
        nbrs = [n for n, _ in small_graph.neighbors(0, Direction.IN)]
        assert nbrs == [1]

    def test_both_neighbors(self, small_graph):
        nbrs = sorted(n for n, _ in small_graph.neighbors(0, Direction.BOTH))
        assert nbrs == [1, 1, 2]

    def test_label_constrained_neighbors(self, small_graph):
        knows = small_graph.edge_labels.id_of("KNOWS")
        nbrs = [n for n, _ in small_graph.neighbors(0, Direction.OUT, knows)]
        assert nbrs == [1]

    def test_degree(self, small_graph):
        assert small_graph.degree(0, Direction.OUT) == 2
        assert small_graph.degree(0, Direction.IN) == 1
        assert small_graph.degree(0, Direction.BOTH) == 3

    def test_find_edge_directed(self, small_graph):
        knows = small_graph.edge_labels.id_of("KNOWS")
        assert small_graph.find_edge(0, 1, Direction.OUT, knows) == 0
        assert small_graph.find_edge(1, 0, Direction.OUT, knows) == 1
        assert small_graph.find_edge(0, 2, Direction.OUT) == 2

    def test_find_edge_missing(self, small_graph):
        assert small_graph.find_edge(1, 2, Direction.OUT) == NO_EDGE
        likes = small_graph.edge_labels.id_of("LIKES")
        assert small_graph.find_edge(0, 1, Direction.OUT, likes) == NO_EDGE

    def test_find_edge_any_label_multiple_runs(self):
        b = GraphBuilder()
        for _ in range(4):
            b.add_vertex("N")
        b.add_edge(0, 1, "X")
        b.add_edge(0, 2, "Y")
        b.add_edge(0, 3, "X")
        g = b.build()
        assert g.find_edge(0, 2, Direction.OUT) != NO_EDGE
        assert g.find_edge(0, 3, Direction.OUT) != NO_EDGE
        assert g.find_edge(0, 0, Direction.OUT) == NO_EDGE

    def test_find_edge_both_direction(self, small_graph):
        likes = small_graph.edge_labels.id_of("LIKES")
        assert small_graph.find_edge(2, 0, Direction.BOTH, likes) == 2
        assert small_graph.find_edge(2, 0, Direction.OUT, likes) == NO_EDGE


class TestGenerators:
    def test_chain(self):
        g = chain_graph(5)
        assert g.num_edges == 4
        assert [n for n, _ in g.neighbors(0)] == [1]
        assert g.degree(4, Direction.OUT) == 0

    def test_cycle(self):
        g = cycle_graph(4)
        assert g.num_edges == 4
        assert [n for n, _ in g.neighbors(3)] == [0]

    def test_complete(self):
        g = complete_graph(4)
        assert g.num_edges == 12
        for v in range(4):
            assert g.degree(v, Direction.OUT) == 3
