"""Coverage for the unified bench harness: warmup exclusion, suite
documents, the compare gate's threshold/exit-code matrix, and the
wall-clock satellites on existing CLI surfaces."""

import json

import pytest

from repro.bench.compare import (
    CompareError,
    compare_bench,
    format_compare,
    load_bench,
)
from repro.bench.harness import BenchHarness, host_info
from repro.bench.suites import SCHEMA_VERSION, SUITES, run_suite
from repro.cli import main


class FakeResult:
    def __init__(self, virtual_time=5, rows=((1,),)):
        self.virtual_time = virtual_time
        self.rows = rows
        self.stats = type(
            "S", (), {"batches_sent": 7, "bytes_sent": 99, "profile": None}
        )()


class TestHarnessWarmup:
    def test_warmup_runs_but_is_excluded_from_samples(self):
        calls = []

        def execute(q):
            calls.append(q)
            return FakeResult()

        cells = BenchHarness(repetitions=2, warmup=1).run(
            {"e": execute}, {"q": "text"}
        )
        cell = cells[("e", "q")]
        assert len(calls) == 3  # 1 warmup + 2 measured
        assert len(cell.samples) == 2
        assert cell.repetitions == 2
        assert cell.warmup == 1

    def test_median_covers_measured_passes_only(self):
        latencies = iter([100, 5, 7])  # warmup pass is the outlier

        def execute(q):
            return FakeResult(virtual_time=next(latencies))

        cell = BenchHarness(repetitions=2, warmup=1).run(
            {"e": execute}, {"q": "text"}
        )[("e", "q")]
        assert cell.virtual_time == 6  # median of 5, 7; 100 discarded

    def test_message_volume_recorded(self):
        cell = BenchHarness(repetitions=1, warmup=0).run(
            {"e": lambda q: FakeResult()}, {"q": "t"}
        )[("e", "q")]
        assert cell.messages == 7
        assert cell.bytes_sent == 99

    def test_host_info_shape(self):
        info = host_info()
        assert set(info) == {
            "platform", "python", "implementation", "cpu_count", "backend"
        }
        assert info["backend"] == "sim"


REQUIRED_QUERY_FIELDS = {
    "median_wall_seconds", "virtual_rounds", "messages", "bytes",
    "peak_rss_bytes", "plan_cache", "profile", "complete", "samples",
}


class TestRunSuite:
    @pytest.fixture(scope="class")
    def doc(self):
        return run_suite("smoke", repetitions=1, only=["Q03", "Q03R"])

    def test_document_schema(self, doc):
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["suite"] == "smoke"
        assert doc["latency_unit"] == "virtual rounds"
        assert set(doc["queries"]) == {"Q03", "Q03R"}
        for q in doc["queries"].values():
            assert REQUIRED_QUERY_FIELDS <= set(q)
            assert q["complete"] is True
            assert q["virtual_rounds"] > 0
        assert doc["total"]["virtual_rounds"] > 0

    def test_profile_breakdown_present_by_default(self, doc):
        assert doc["profile_enabled"] is True
        for q in doc["queries"].values():
            assert "worker.dft" in q["profile"]

    def test_plan_cache_hit_rate(self, doc):
        cache = doc["plan_cache"]
        # Warmup compiles (miss), the measured pass hits.
        assert cache["misses"] == 2
        assert cache["hits"] == 2
        assert cache["hit_rate"] == 0.5

    def test_no_profile_drops_breakdown(self):
        doc = run_suite("smoke", repetitions=1, only=["Q03"], profile=False)
        assert doc["profile_enabled"] is False
        assert doc["queries"]["Q03"]["profile"] is None

    def test_index_suite_splits_engines(self):
        doc = run_suite("index", repetitions=1, only=["Q10"])
        assert set(doc["queries"]) == {"Q10[rpqd]", "Q10[rpqd-noindex]"}

    def test_unknown_query_rejected(self):
        with pytest.raises(ValueError):
            run_suite("smoke", only=["nope"])

    def test_every_suite_is_well_formed(self):
        for name, suite in SUITES.items():
            assert suite.name == name
            assert suite.repetitions >= 1


def _doc(queries, **top):
    base = {"schema_version": SCHEMA_VERSION, "queries": queries}
    base.update(top)
    return base


def _cell(rounds=10, wall=0.1, messages=50):
    return {
        "virtual_rounds": rounds,
        "median_wall_seconds": wall,
        "messages": messages,
    }


class TestCompare:
    def test_self_compare_ok(self):
        doc = _doc({"q": _cell()})
        report = compare_bench(doc, doc)
        assert report["ok"] is True
        assert report["checked"] == 1

    def test_rounds_regression_flagged(self):
        report = compare_bench(
            _doc({"q": _cell(rounds=12)}), _doc({"q": _cell(rounds=10)})
        )
        assert report["ok"] is False
        assert report["regressions"][0]["metric"] == "virtual_rounds"

    def test_custom_threshold_admits_growth(self):
        report = compare_bench(
            _doc({"q": _cell(rounds=12)}), _doc({"q": _cell(rounds=10)}),
            max_rounds_ratio=1.5,
        )
        assert report["ok"] is True

    def test_wall_regression_above_floor_flagged(self):
        report = compare_bench(
            _doc({"q": _cell(wall=0.5)}), _doc({"q": _cell(wall=0.1)})
        )
        assert [r["metric"] for r in report["regressions"]] == [
            "median_wall_seconds"
        ]

    def test_wall_jitter_below_floor_ignored(self):
        report = compare_bench(
            _doc({"q": _cell(wall=0.004)}), _doc({"q": _cell(wall=0.0001)})
        )
        assert report["ok"] is True

    def test_messages_regression_flagged(self):
        report = compare_bench(
            _doc({"q": _cell(messages=60)}), _doc({"q": _cell(messages=50)})
        )
        assert report["ok"] is False

    def test_missing_query_is_a_regression(self):
        report = compare_bench(_doc({}), _doc({"q": _cell()}))
        assert report["ok"] is False
        assert report["regressions"][0]["metric"] == "presence"

    def test_extra_query_only_noted(self):
        report = compare_bench(
            _doc({"q": _cell(), "new": _cell()}), _doc({"q": _cell()})
        )
        assert report["ok"] is True
        assert any("new" in n for n in report["notes"])

    def test_host_mismatch_noted(self):
        report = compare_bench(
            _doc({"q": _cell()}, host={"platform": "A"}),
            _doc({"q": _cell()}, host={"platform": "B"}),
        )
        assert report["ok"] is True
        assert any("hosts differ" in n for n in report["notes"])

    def test_unknown_threshold_rejected(self):
        with pytest.raises(CompareError):
            compare_bench(_doc({}), _doc({}), max_bogus_ratio=1.0)

    def test_format_compare_mentions_regressions(self):
        report = compare_bench(
            _doc({"q": _cell(rounds=99)}), _doc({"q": _cell(rounds=10)})
        )
        text = format_compare(report)
        assert "REGRESSION q" in text
        assert "1 regression(s)" in text


class TestLoadBench:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps(_doc({"q": _cell()})))
        assert load_bench(str(path))["queries"]["q"]["virtual_rounds"] == 10

    @pytest.mark.parametrize("payload", [
        "garbage",
        json.dumps([1, 2]),
        json.dumps({"queries": {}}),  # no schema_version
        json.dumps({"schema_version": 999, "queries": {}}),
        json.dumps({"schema_version": SCHEMA_VERSION}),  # no queries
    ])
    def test_invalid_documents_rejected(self, tmp_path, payload):
        path = tmp_path / "b.json"
        path.write_text(payload)
        with pytest.raises(CompareError):
            load_bench(str(path))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CompareError):
            load_bench(str(tmp_path / "absent.json"))


class TestBenchCli:
    def _bench(self, tmp_path, *extra):
        out = tmp_path / "BENCH_smoke.json"
        rc = main([
            "bench", "--suite", "smoke", "--repetitions", "1",
            "--queries", "Q03", "--out", str(out), *extra,
        ])
        return rc, out

    def test_writes_document(self, tmp_path, capsys):
        rc, out = self._bench(tmp_path)
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == SCHEMA_VERSION
        assert REQUIRED_QUERY_FIELDS <= set(doc["queries"]["Q03"])
        assert "bench written to" in capsys.readouterr().out

    def test_self_compare_exits_zero(self, tmp_path, capsys):
        rc, out = self._bench(tmp_path)
        assert rc == 0
        rc = main([
            "bench", "--current", str(out), "--compare", str(out),
        ])
        assert rc == 0
        assert "bench compare: ok" in capsys.readouterr().out

    def test_injected_regression_exits_one(self, tmp_path, capsys):
        _rc, out = self._bench(tmp_path)
        doc = json.loads(out.read_text())
        doc["queries"]["Q03"]["virtual_rounds"] *= 2
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(doc))
        rc = main([
            "bench", "--current", str(worse), "--compare", str(out),
        ])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        _rc, out = self._bench(tmp_path)
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        rc = main(["bench", "--current", str(out), "--compare", str(bad)])
        assert rc == 2

    def test_current_without_compare_exits_two(self, tmp_path):
        _rc, out = self._bench(tmp_path)
        assert main(["bench", "--current", str(out)]) == 2

    def test_unknown_suite_exits_two(self, tmp_path):
        assert main([
            "bench", "--suite", "bogus",
            "--out", str(tmp_path / "x.json"),
        ]) == 2


class TestWorkloadWallClock:
    def test_json_records_wall_seconds_per_engine(self, capsys):
        rc = main([
            "workload", "--scale", "xs", "--machines", "2", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        for record in payload["results"]:
            for ename in payload["engines"]:
                wall = record[f"{ename}_wall_seconds"]
                assert wall is None or wall >= 0
