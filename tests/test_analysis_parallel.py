"""Tests for the parallel-readiness pass (RPQ100 series).

Every rule gets a positive (seeded violation via
``ProjectSource.from_sources``) and a negative (clean snippet) test; the
suppression and baseline machinery round-trips; and the final tests pin
the whole repo RPQ100-clean against the committed baseline — the gate
``repro analyze --static`` enforces in CI.
"""

import json
import pathlib

from repro.analysis import ProjectSource
from repro.analysis.parallel import (
    PARALLEL_RULES,
    analyze_project,
    apply_baseline,
    load_baseline,
    run_static_analysis,
    save_baseline,
)
from repro.analysis.parallel.callgraph import SinkTaint
from repro.analysis.parallel.rules import (
    CrossProcessAliasingRule,
    EntropyEscapeRule,
    MessagePicklabilityRule,
    NondeterministicIterationRule,
    SharedMutableStateRule,
)
from repro.analysis.suppress import split_suppressed
from repro.cli import main

ROOT = pathlib.Path(__file__).resolve().parent.parent


def run_rule(rule_cls, sources):
    project = ProjectSource.from_sources(sources)
    return list(rule_cls().check(project))


MESSAGE_MODULE = """
from dataclasses import dataclass, field

@dataclass
class Batch:
    src_machine: int
    dst_machine: int
    flow_id: object = None
    contexts: list = field(default_factory=list)
"""


class TestRPQ101SharedMutableState:
    def test_flags_module_and_class_level_mutables(self):
        violations = run_rule(
            SharedMutableStateRule,
            {
                "repro/runtime/cachemod.py": (
                    "CACHE = {}\n"
                    "PENDING = set()\n"
                    "SEQ = count()\n"
                    "class Pool:\n"
                    "    shared = []\n"
                ),
            },
        )
        messages = [v.message for v in violations]
        assert len(violations) == 4
        assert any("module-level CACHE" in m for m in messages)
        assert any("class attribute Pool.shared" in m for m in messages)
        assert any("call to count()" in m for m in messages)

    def test_clean_module_passes(self):
        violations = run_rule(
            SharedMutableStateRule,
            {
                "repro/runtime/clean.py": (
                    "__all__ = ['f']\n"
                    "LIMIT = 7\n"
                    "NAMES = ('a', 'b')\n"
                    "FROZEN = frozenset_placeholder = None\n"
                    "class Machine:\n"
                    "    def __init__(self):\n"
                    "        self.cache = {}\n"
                ),
            },
        )
        assert violations == []

    def test_outside_certified_layers_ignored(self):
        violations = run_rule(
            SharedMutableStateRule,
            {"repro/bench/tables.py": "ROWS = []\n"},
        )
        assert violations == []


ITERATION_TAINTED = """
class Machine:
    def __init__(self):
        self.pending = set()
        self.network = None

    def flush(self):
        for key in self.pending:
            self.network.send(key, 0)
"""

ITERATION_SORTED = """
class Machine:
    def __init__(self):
        self.pending = set()
        self.network = None

    def flush(self):
        for key in sorted(self.pending):
            self.network.send(key, 0)
"""

ITERATION_UNTAINTED = """
class Machine:
    def __init__(self):
        self.pending = set()

    def count_pending(self):
        total = 0
        for key in self.pending:
            total += 1
        return total
"""


class TestRPQ102NondeterministicIteration:
    def test_flags_unsorted_set_iteration_on_sink_path(self):
        violations = run_rule(
            NondeterministicIterationRule,
            {"repro/runtime/machine.py": ITERATION_TAINTED},
        )
        assert len(violations) == 1
        assert "flush()" in violations[0].message

    def test_sorted_iteration_passes(self):
        violations = run_rule(
            NondeterministicIterationRule,
            {"repro/runtime/machine.py": ITERATION_SORTED},
        )
        assert violations == []

    def test_iteration_off_sink_paths_not_flagged(self):
        violations = run_rule(
            NondeterministicIterationRule,
            {"repro/runtime/machine.py": ITERATION_UNTAINTED},
        )
        assert violations == []

    def test_flags_keys_and_sum_consumers(self):
        violations = run_rule(
            NondeterministicIterationRule,
            {
                "repro/engine/agg.py": (
                    "def emit_output(values, table):\n"
                    "    total = sum(values)\n"
                    "    order = list(table.keys())\n"
                    "    return total, order\n"
                    "def helper():\n"
                    "    values = set()\n"
                    "    return values\n"
                ),
            },
        )
        kinds = sorted(v.message.split()[0] for v in violations)
        assert kinds == ["list()", "sum()"]

    def test_taint_propagates_through_call_graph(self):
        project = ProjectSource.from_sources(
            {
                "repro/runtime/a.py": (
                    "def emit_output(x):\n"
                    "    pass\n"
                    "def middle(x):\n"
                    "    emit_output(x)\n"
                    "def outer(x):\n"
                    "    middle(x)\n"
                    "def unrelated(x):\n"
                    "    return x + 1\n"
                ),
            }
        )
        taint = SinkTaint(project)
        assert taint.is_tainted("emit_output")
        assert taint.is_tainted("middle")
        assert taint.is_tainted("outer")
        assert not taint.is_tainted("unrelated")


class TestRPQ103EntropyEscapes:
    def test_flags_wall_clock_random_and_id(self):
        violations = run_rule(
            EntropyEscapeRule,
            {
                "repro/runtime/clocky.py": (
                    "import time, random\n"
                    "def stamp():\n"
                    "    t = time.time()\n"
                    "    r = random.random()\n"
                    "    k = id(t)\n"
                    "    return t, r, k\n"
                ),
            },
        )
        rules = [v.message for v in violations]
        assert len(violations) == 3
        assert any("time.time()" in m for m in rules)
        assert any("unseeded global" in m for m in rules)
        assert any("id() leaks" in m for m in rules)

    def test_seeded_random_and_virtual_clock_pass(self):
        violations = run_rule(
            EntropyEscapeRule,
            {
                "repro/runtime/seeded.py": (
                    "import random\n"
                    "def make_rng(config):\n"
                    "    return random.Random(config.schedule_seed)\n"
                ),
            },
        )
        assert violations == []

    def test_wall_clock_outside_layers_not_flagged(self):
        violations = run_rule(
            EntropyEscapeRule,
            {"repro/bench/harness.py": "import time\nW = time.perf_counter()\n"},
        )
        assert violations == []

    def test_import_alias_does_not_evade(self):
        violations = run_rule(
            EntropyEscapeRule,
            {
                "repro/runtime/sneaky.py": (
                    "import time as _t\n"
                    "from time import perf_counter as tick\n"
                    "from random import shuffle\n"
                    "def stamp(items):\n"
                    "    shuffle(items)\n"
                    "    return _t.time(), tick()\n"
                ),
            },
        )
        messages = [v.message for v in violations]
        assert len(violations) == 3
        assert any("time.time()" in m for m in messages)
        assert any("time.perf_counter()" in m for m in messages)
        assert any("random.shuffle()" in m for m in messages)

    def test_harmless_from_imports_pass(self):
        violations = run_rule(
            EntropyEscapeRule,
            {
                "repro/runtime/benign.py": (
                    "from time import sleep\n"
                    "from random import Random\n"
                    "def rng(config):\n"
                    "    sleep(0)\n"
                    "    return Random(config.schedule_seed)\n"
                ),
            },
        )
        assert violations == []


class TestRPQ104MessagePicklability:
    def test_flags_generator_lambda_and_self(self):
        violations = run_rule(
            MessagePicklabilityRule,
            {
                "repro/runtime/message.py": MESSAGE_MODULE,
                "repro/runtime/machine.py": (
                    "def emit(self, dst):\n"
                    "    b = Batch(src_machine=0, dst_machine=dst,\n"
                    "              contexts=(x for x in []),\n"
                    "              flow_id=lambda: 1)\n"
                    "    batch = b\n"
                    "    batch.flow_id = self\n"
                    "    return batch\n"
                ),
            },
        )
        messages = [v.message for v in violations]
        assert len(violations) == 3
        assert any("generator expression" in m for m in messages)
        assert any("a lambda" in m for m in messages)
        assert any("bare self reference" in m for m in messages)

    def test_plain_data_construction_passes(self):
        violations = run_rule(
            MessagePicklabilityRule,
            {
                "repro/runtime/message.py": MESSAGE_MODULE,
                "repro/runtime/machine.py": (
                    "def emit(self, dst, ctx):\n"
                    "    batch = Batch(src_machine=self.id, dst_machine=dst,\n"
                    "                  contexts=[(0, list(ctx))])\n"
                    "    batch.flow_id = 17\n"
                    "    return batch\n"
                ),
            },
        )
        assert violations == []

    def test_checkpoint_slots_class_covered(self):
        violations = run_rule(
            MessagePicklabilityRule,
            {
                "repro/recovery/checkpoint.py": (
                    "class ClusterCheckpoint:\n"
                    "    __slots__ = ('epoch', 'machines')\n"
                    "    def __init__(self, epoch, machines):\n"
                    "        self.epoch = epoch\n"
                    "        self.machines = machines\n"
                ),
                "repro/recovery/manager.py": (
                    "def cut(self):\n"
                    "    return ClusterCheckpoint(epoch=1,\n"
                    "                             machines=iter([]))\n"
                ),
            },
        )
        assert len(violations) == 1
        assert "live iter() object" in violations[0].message


class TestRPQ105CrossProcessAliasing:
    def test_flags_mutation_into_shared_graph(self):
        violations = run_rule(
            CrossProcessAliasingRule,
            {
                "repro/runtime/machine.py": (
                    "def corrupt(self, v, x):\n"
                    "    self.partition.graph.labels.append(x)\n"
                    "    self.csr.nbr[v] = x\n"
                ),
            },
        )
        assert len(violations) == 2
        assert any("labels.append" in v.message for v in violations)
        assert any("csr.nbr[...]" in v.message for v in violations)

    def test_rebinding_local_partition_reference_passes(self):
        violations = run_rule(
            CrossProcessAliasingRule,
            {
                "repro/runtime/machine.py": (
                    "def restore(self, partition):\n"
                    "    self.partition = partition\n"
                    "    self.state.partition = partition\n"
                    "    self._open.pop((0, 0, 0), None)\n"
                ),
            },
        )
        assert violations == []

    def test_graph_layer_builders_exempt(self):
        violations = run_rule(
            CrossProcessAliasingRule,
            {
                "repro/graph/builder.py": (
                    "def add(self, x):\n"
                    "    self.graph.labels.append(x)\n"
                ),
            },
        )
        assert violations == []


class TestSuppressions:
    def test_same_line_and_line_above_suppress(self):
        sources = {
            "repro/runtime/clocky.py": (
                "import time\n"
                "def stamp():\n"
                "    # repro: allow[RPQ103] wall-clock reporting only\n"
                "    a = time.time()\n"
                "    b = time.time()  # repro: allow[RPQ103] reporting too\n"
                "    return a, b\n"
            ),
        }
        project = ProjectSource.from_sources(sources)
        kept, suppressed = analyze_project(project)
        assert kept == []
        assert len(suppressed) == 2

    def test_wrong_rule_id_does_not_suppress(self):
        sources = {
            "repro/runtime/clocky.py": (
                "import time\n"
                "def stamp():\n"
                "    # repro: allow[RPQ101] wrong rule\n"
                "    return time.time()\n"
            ),
        }
        kept, suppressed = analyze_project(ProjectSource.from_sources(sources))
        assert len(kept) == 1
        assert suppressed == []

    def test_reasonless_waiver_is_rpq100(self):
        sources = {
            "repro/runtime/clocky.py": (
                "import time\n"
                "def stamp():\n"
                "    # repro: allow[RPQ103]\n"
                "    return time.time()\n"
            ),
        }
        kept, _suppressed = analyze_project(ProjectSource.from_sources(sources))
        rules = sorted(v.rule_id for v in kept)
        # The reasonless comment is no waiver (RPQ103 stays) and is itself
        # flagged (RPQ100).
        assert rules == ["RPQ100", "RPQ103"]

    def test_protocol_lint_family_shares_the_syntax(self):
        from repro.analysis import Linter
        from repro.analysis.rules import ConfigAttributeRule

        sources = {
            "repro/config.py": (
                "from dataclasses import dataclass\n"
                "@dataclass\n"
                "class EngineConfig:\n"
                "    batch_size: int = 512\n"
            ),
            "repro/runtime/machine.py": (
                "def f(config):\n"
                "    # repro: allow[RPQ006] attribute added dynamically in tests\n"
                "    return config.bogus_field\n"
            ),
        }
        project = ProjectSource.from_sources(sources)
        violations = Linter([ConfigAttributeRule()]).run(project)
        assert len(violations) == 1
        kept, suppressed = split_suppressed(project, violations)
        assert kept == []
        assert len(suppressed) == 1


class TestBaseline:
    SOURCES = {
        "repro/runtime/clocky.py": (
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        ),
    }

    def test_round_trip(self, tmp_path):
        project = ProjectSource.from_sources(self.SOURCES)
        kept, _ = analyze_project(project)
        assert len(kept) == 1
        baseline_file = tmp_path / "baseline.json"
        save_baseline(baseline_file, kept)
        entries = load_baseline(baseline_file)
        new, baselined, stale = apply_baseline(kept, entries)
        assert new == []
        assert len(baselined) == 1
        assert stale == []

    def test_stale_entries_reported(self, tmp_path):
        project = ProjectSource.from_sources(self.SOURCES)
        kept, _ = analyze_project(project)
        baseline_file = tmp_path / "baseline.json"
        save_baseline(baseline_file, kept)
        entries = load_baseline(baseline_file)
        new, baselined, stale = apply_baseline([], entries)
        assert new == [] and baselined == []
        assert len(stale) == 1

    def test_reasons_survive_update(self, tmp_path):
        project = ProjectSource.from_sources(self.SOURCES)
        kept, _ = analyze_project(project)
        baseline_file = tmp_path / "baseline.json"
        entries = save_baseline(baseline_file, kept)
        entries[0]["reason"] = "documented: bench-only wall clock"
        baseline_file.write_text(json.dumps({"violations": entries}))
        save_baseline(
            baseline_file, kept, previous_entries=load_baseline(baseline_file)
        )
        assert (
            load_baseline(baseline_file)[0]["reason"]
            == "documented: bench-only wall clock"
        )


class TestStaticCli:
    def _seed_package(self, tmp_path):
        pkg = tmp_path / "repro" / "runtime"
        pkg.mkdir(parents=True)
        (pkg / "clocky.py").write_text(
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        )
        return tmp_path / "repro"

    def test_exit_codes_and_json(self, tmp_path, capsys):
        package = self._seed_package(tmp_path)
        baseline = tmp_path / "baseline.json"
        rc = main(
            ["analyze", "--static", str(package), "--baseline", str(baseline)]
        )
        assert rc == 1
        capsys.readouterr()
        rc = main(
            ["analyze", "--static", str(package), "--baseline", str(baseline),
             "--json"]
        )
        report = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert report["ok"] is False
        assert report["violations"][0]["rule"] == "RPQ103"

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        package = self._seed_package(tmp_path)
        baseline = tmp_path / "baseline.json"
        rc = main(
            ["analyze", "--static", str(package), "--baseline", str(baseline),
             "--update-baseline"]
        )
        assert rc == 0
        capsys.readouterr()
        rc = main(
            ["analyze", "--static", str(package), "--baseline", str(baseline),
             "--json"]
        )
        report = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert report["ok"] is True
        assert len(report["baselined"]) == 1

    def test_missing_package_is_usage_error(self, tmp_path):
        rc = main(
            ["analyze", "--static", str(tmp_path / "nope"),
             "--baseline", str(tmp_path / "b.json")]
        )
        assert rc == 2

    def test_nonstatic_json_contract(self, capsys):
        rc = main(["analyze", "--no-external", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert report["ok"] is True
        assert report["rules"][0] == "RPQ001"


class TestRepoIsParallelReady:
    """The tentpole acceptance gate: the shipped tree is RPQ100-clean."""

    def test_whole_repo_clean_against_committed_baseline(self):
        report = run_static_analysis(
            package_root=ROOT / "src" / "repro",
            baseline_path=ROOT / "analysis-baseline.json",
        )
        assert report.new == [], [v.format() for v in report.new]
        assert report.stale_baseline == []

    def test_committed_baseline_entries_all_documented(self):
        entries = load_baseline(ROOT / "analysis-baseline.json")
        undocumented = [e for e in entries if not e.get("reason")]
        assert undocumented == []

    def test_every_rule_has_id_title_rationale(self):
        seen = set()
        for rule_cls in PARALLEL_RULES:
            assert rule_cls.rule_id.startswith("RPQ10")
            assert rule_cls.title and rule_cls.rationale
            seen.add(rule_cls.rule_id)
        assert seen == {"RPQ101", "RPQ102", "RPQ103", "RPQ104", "RPQ105"}
