"""Query-shape fuzzing: random patterns cross-checked across engines.

The graphs fuzzer (`test_property_based`) varies topology for a fixed
query; this one varies the *query shape* — chains of edges and RPQ
segments with random directions, quantifiers, labels, filters, and an
optional closing branch — and uses three-engine agreement as the oracle
(the engines share only the parser/planner; evaluation is disjoint:
distributed DFT vs BFS vs semi-naive joins).
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import EngineConfig, GraphBuilder, RPQdEngine
from repro.baselines import BftEngine, RecursiveEngine


def build_graph(seed):
    rng = random.Random(seed)
    b = GraphBuilder()
    n = 14
    for i in range(n):
        b.add_vertex(rng.choice(["A", "B"]), idx=i)
    for _ in range(30):
        b.add_edge(rng.randrange(n), rng.randrange(n), rng.choice(["E", "F"]))
    return b.build()


@st.composite
def query_shapes(draw):
    num_vars = draw(st.integers(2, 4))
    variables = [f"v{i}" for i in range(num_vars)]
    parts = []
    rpq_budget = 1  # keep runtime bounded: at most one RPQ segment
    for i in range(num_vars):
        label = draw(st.sampled_from(["", ":A", ":B", ":A|B"]))
        parts.append(f"({variables[i]}{label})")
        if i == num_vars - 1:
            break
        use_rpq = rpq_budget > 0 and draw(st.booleans())
        edge_label = draw(st.sampled_from(["E", "F"]))
        if use_rpq:
            rpq_budget -= 1
            lo = draw(st.integers(0, 2))
            hi = lo + draw(st.integers(0, 2))
            direction = draw(st.sampled_from(["-/:{l}{q}/->", "<-/:{l}{q}/-", "-/:{l}{q}/-"]))
            parts.append(direction.format(l=edge_label, q=f"{{{lo},{hi}}}"))
        else:
            direction = draw(st.sampled_from(["-[:{l}]->", "<-[:{l}]-", "-[:{l}]-"]))
            parts.append(direction.format(l=edge_label))
    pattern = "".join(parts)

    clauses = []
    if draw(st.booleans()):
        var = draw(st.sampled_from(variables))
        threshold = draw(st.integers(0, 13))
        op = draw(st.sampled_from([">", "<=", "="]))
        clauses.append(f"{var}.idx {op} {threshold}")
    # Occasionally close a branch between two non-adjacent variables.
    extra_match = ""
    if num_vars >= 3 and draw(st.booleans()):
        extra_match = f", MATCH ({variables[0]})-[:E]->({variables[-1]})"
    where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
    return f"SELECT COUNT(*) FROM MATCH {pattern}{extra_match}{where}"


class TestQueryFuzzer:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 500), query=query_shapes())
    def test_three_engines_agree_on_random_queries(self, seed, query):
        graph = build_graph(seed)
        rpqd = RPQdEngine(graph, EngineConfig(num_machines=2)).execute(query).scalar()
        bft = BftEngine(graph).execute(query).scalar()
        rec = RecursiveEngine(graph).execute(query).scalar()
        assert rpqd == bft == rec, query

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 500), query=query_shapes())
    def test_machine_count_invariance_on_random_queries(self, seed, query):
        graph = build_graph(seed)
        one = RPQdEngine(graph, EngineConfig(num_machines=1)).execute(query).scalar()
        four = RPQdEngine(graph, EngineConfig(num_machines=4)).execute(query).scalar()
        assert one == four, query
