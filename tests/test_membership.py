"""Oracle-free failure detection: the heartbeat membership service.

The detection contract (docs/architecture.md §11): silence escalates
ALIVE → SUSPECT → CONFIRMED-DOWN on the virtual clock, confirmation is a
quorum decision (live view + the coordination-service witness), a
minority partition can never confirm anybody, false suspicions that heal
before confirmation cost nothing, and *no production code path reads the
injector's ground truth* to make a recovery decision — the injector is a
test oracle only (the final test enforces that with an AST scan).
"""

import ast
import json
import pathlib
import random

import pytest

from repro import EngineConfig, Session, connect
from repro.analysis.sanitizer import RuntimeSanitizer
from repro.errors import ConfigError, SanitizerViolation
from repro.faults import (
    FaultInjector,
    FaultPlan,
    MachineCrash,
    MachineStall,
    NetworkPartition,
)
from repro.graph.generators import random_graph
from repro.membership import (
    ALIVE,
    CONFIRMED_DOWN,
    SUSPECT,
    MembershipService,
    ProgressWatchdog,
    resolve_stall,
)
from repro.runtime.message import Batch
from repro.runtime.network import SimulatedNetwork, frame_checksum

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Default detection window: suspect_after + confirm_after rounds.
WINDOW = 6 + 24


def detector(plan, num_machines=4, **kwargs):
    injector = FaultInjector(plan, num_machines)
    return MembershipService(num_machines, injector=injector, **kwargs)


def run_detector(service, rounds, collect=None):
    """Tick through ``rounds``; returns {round: newly_confirmed} for the
    rounds that confirmed anyone.  ``collect`` maps round -> callable to
    sample state mid-run."""
    confirmed = {}
    for round_no in range(1, rounds + 1):
        newly = service.tick(round_no)
        if newly:
            confirmed[round_no] = newly
        if collect is not None and round_no in collect:
            collect[round_no](round_no)
    return confirmed


# ----------------------------------------------------------------------
# State transitions
# ----------------------------------------------------------------------
class TestStateTransitions:
    def test_fault_free_cluster_stays_alive(self):
        service = MembershipService(4)
        assert run_detector(service, 80) == {}
        assert all(service.state_of(h) == ALIVE for h in range(4))
        assert service.suspicions == 0
        assert service.probes_delivered > 0

    def test_permanent_crash_escalates_alive_suspect_confirmed(self):
        plan = FaultPlan(seed=1, crashes=(MachineCrash(machine=2, round=5),))
        service = detector(plan)
        seen = {}
        samples = {
            4: lambda r: seen.setdefault("before", service.state_of(2)),
            20: lambda r: seen.setdefault("mid", service.state_of(2)),
        }
        confirmed = run_detector(service, 60, collect=samples)
        assert seen["before"] == ALIVE
        assert seen["mid"] == SUSPECT
        assert service.state_of(2) == CONFIRMED_DOWN
        assert service.is_confirmed_down(2)
        # Exactly one confirmation, of exactly host 2, after the window.
        ((round_no, hosts),) = confirmed.items()
        assert hosts == [2]
        assert round_no > WINDOW
        (latency,) = service.detection_latencies
        assert latency > WINDOW

    def test_transient_crash_is_a_free_false_suspicion(self):
        # Down for 13 rounds: past suspect_after (6), well inside the
        # confirmation window (30) — suspected, then cleared, no verdict.
        plan = FaultPlan(
            seed=1,
            crashes=(MachineCrash(machine=1, round=5, recover_round=18),),
        )
        service = detector(plan)
        assert run_detector(service, 80) == {}
        assert service.state_of(1) == ALIVE
        assert service.suspicions >= 1
        assert service.false_suspicions >= 1
        assert service.confirmations == 0

    def test_suspects_inside_window_reset_the_progress_clock(self):
        plan = FaultPlan(
            seed=1,
            crashes=(MachineCrash(machine=1, round=5, recover_round=18),),
        )
        service = detector(plan)
        for round_no in range(1, 15):
            service.tick(round_no)
        assert service.unconfirmed_suspects(14) == (1,)
        watchdog = ProgressWatchdog(stall_limit=3)
        for round_no in range(1, 15):
            watchdog.observe(round_no, False, service)
        assert not watchdog.expired(14)

    def test_confirmation_is_revocable_until_fenced(self):
        # Outage longer than the whole detection window: the verdict
        # lands, the host comes back, the verdict is revoked.
        plan = FaultPlan(
            seed=1,
            crashes=(MachineCrash(machine=1, round=5, recover_round=40),),
        )
        service = detector(plan)
        confirmed = run_detector(service, 80)
        assert list(confirmed.values()) == [[1]]
        assert service.confirmations == 1
        assert service.rejoins == 1
        assert service.state_of(1) == ALIVE
        assert not service.is_confirmed_down(1)

    def test_fenced_host_never_rejoins(self):
        plan = FaultPlan(
            seed=1,
            crashes=(MachineCrash(machine=1, round=5, recover_round=40),),
        )
        service = detector(plan)
        for round_no in range(1, 80):
            for host in service.tick(round_no):
                service.fence(host, round_no)
        assert service.view() == (0, 2, 3)
        assert service.rejoins == 0
        assert service.is_confirmed_down(1)
        # Future quorums are over the shrunken view + witness: |view|=3,
        # population 4, majority 3.
        assert service.quorum() == 3


# ----------------------------------------------------------------------
# Quorum safety under partitions
# ----------------------------------------------------------------------
class TestQuorumSafety:
    def test_symmetric_split_brain_confirms_nobody(self):
        plan = FaultPlan(
            seed=1,
            partitions=(
                NetworkPartition(
                    start_round=2, mode="symmetric", groups=((0, 1), (2, 3))
                ),
            ),
        )
        service = detector(plan)
        assert run_detector(service, 120) == {}
        assert service.confirmations == 0
        # Every host is suspected by the far side but short of quorum:
        # 2 votes < 3 needed (population 5) — the split-brain signature.
        assert set(service.quorum_blocked()) == {0, 1, 2, 3}
        assert all(service.state_of(h) == SUSPECT for h in range(4))

    def test_quorum_blocked_hosts_do_not_stall_the_watchdog_forever(self):
        plan = FaultPlan(
            seed=1,
            partitions=(
                NetworkPartition(
                    start_round=2, mode="symmetric", groups=((0, 1), (2, 3))
                ),
            ),
        )
        service = detector(plan)
        for round_no in range(1, 120):
            service.tick(round_no)
        # Blocked suspects are NOT "unconfirmed suspects": they must not
        # buy the progress watchdog more time indefinitely...
        assert service.unconfirmed_suspects(119) == ()
        # ...and a stalled query resolves to an honest quorum-lost error,
        # never a partial-results downgrade or a failover.
        kind, hosts = resolve_stall(service)
        assert kind == "quorum"
        assert set(hosts) == {0, 1, 2, 3}

    def test_majority_evicts_isolated_minority_only(self):
        plan = FaultPlan(
            seed=1,
            partitions=(
                NetworkPartition(
                    start_round=2, mode="symmetric", groups=((0,), (1, 2, 3))
                ),
            ),
        )
        service = detector(plan)
        confirmed = run_detector(service, 120)
        # The three-host side reaches quorum (3 of 5) on the isolated
        # host; the isolated host's lone votes against the other three
        # never can: they stay blocked, not confirmed.
        assert list(confirmed.values()) == [[0]]
        assert service.is_confirmed_down(0)
        assert set(service.quorum_blocked()) == {1, 2, 3}
        assert service.confirmations == 1

    def test_healed_partition_costs_nothing(self):
        plan = FaultPlan(
            seed=1,
            partitions=(
                NetworkPartition(
                    start_round=2,
                    heal_round=20,
                    mode="symmetric",
                    groups=((0, 1), (2, 3)),
                ),
            ),
        )
        service = detector(plan)
        assert run_detector(service, 120) == {}
        assert all(service.state_of(h) == ALIVE for h in range(4))
        assert service.false_suspicions > 0
        assert service.confirmations == 0
        assert service.quorum_blocked() == ()

    def test_asymmetric_partition_evicts_the_unhearable_host(self):
        # One-way link failure: nobody hears host 0 (its sends are lost)
        # but it hears everyone.  A host the cluster cannot hear is dead
        # for the protocol: three vouched observers reach quorum.
        plan = FaultPlan(
            seed=1,
            partitions=(
                NetworkPartition(
                    start_round=2, mode="asymmetric", groups=((0,), (1, 2, 3))
                ),
            ),
        )
        service = detector(plan)
        confirmed = run_detector(service, 120)
        assert list(confirmed.values()) == [[0]]

    def test_partial_partition_severs_only_the_named_links(self):
        # Severing 0->1 alone leaves observers 2, 3 and the witness
        # hearing host 0: one silent observer is a suspicion at most.
        plan = FaultPlan(
            seed=1,
            partitions=(
                NetworkPartition(
                    start_round=2, mode="partial", links=((0, 1),)
                ),
            ),
        )
        service = detector(plan)
        assert run_detector(service, 120) == {}
        assert service.confirmations == 0

    def test_piggybacked_data_plane_traffic_counts_as_liveness(self):
        # Kill every probe; feed data-plane `heard` evidence instead —
        # chatty links keep the cluster ALIVE without a single probe.
        plan = FaultPlan(seed=1, drop_prob=1.0, kinds=("probe",))
        service = detector(plan)
        for round_no in range(1, 60):
            for observer in range(4):
                for peer in range(4):
                    if observer != peer:
                        service.heard(observer, peer, round_no)
            # The witness hears nobody (no probes arrive), but machine
            # observers vouched... by nobody: witness votes alone, 1 < 3.
            service.tick(round_no)
        assert service.confirmations == 0
        assert service.probes_delivered == 0


# ----------------------------------------------------------------------
# Sanitizer invariants
# ----------------------------------------------------------------------
class TestSanitizerInvariants:
    def test_confirmation_without_quorum_is_a_violation(self):
        san = RuntimeSanitizer()
        with pytest.raises(SanitizerViolation, match="quorum"):
            san.on_membership_confirm(2, votes=1, quorum=3, population=5)

    def test_confirmation_with_quorum_passes(self):
        san = RuntimeSanitizer()
        san.on_membership_confirm(2, votes=3, quorum=3, population=5)
        assert san.checks == 1

    def test_failover_without_confirmation_is_a_violation(self):
        san = RuntimeSanitizer()
        service = MembershipService(4)
        with pytest.raises(SanitizerViolation, match="without confirmation"):
            san.on_failover([2], service)

    def test_failover_of_confirmed_host_passes(self):
        san = RuntimeSanitizer()
        plan = FaultPlan(seed=1, crashes=(MachineCrash(machine=2, round=5),))
        service = detector(plan)
        run_detector(service, 60)
        san.on_failover([2], service)
        assert san.checks == 1

    def test_failover_check_is_vacuous_without_a_detector(self):
        san = RuntimeSanitizer()
        san.on_failover([2], None)  # detection forced off: nothing to assert


# ----------------------------------------------------------------------
# Corruption: checksum catches it, ARQ recovers it as loss
# ----------------------------------------------------------------------
class TestCorruption:
    def test_frame_checksum_is_deterministic_and_field_sensitive(self):
        batch = Batch(src_machine=0, dst_machine=1, target_stage=0, depth=0)
        batch.tseq = 7
        assert frame_checksum(batch) == frame_checksum(batch)
        batch2 = Batch(src_machine=0, dst_machine=1, target_stage=0, depth=0)
        batch2.tseq = 8
        assert frame_checksum(batch) != frame_checksum(batch2)

    def test_corrupted_frame_is_discarded_not_delivered(self):
        plan = FaultPlan(seed=1, corrupt_prob=1.0)
        injector = FaultInjector(plan, 2)
        net = SimulatedNetwork(2, reliable=True, faults=injector)
        batch = Batch(src_machine=0, dst_machine=1, target_stage=0, depth=0)
        batch.add(5, [5])
        net.send(batch, now_round=1)
        assert net.drain(1, 2) == []
        assert net.corrupt_dropped == 1
        assert net.transport_summary()["corrupt_dropped"] == 1
        # The frame was not acked: the ARQ machinery still owns it.
        assert net._outstanding

    def test_corruption_sweep_reproduces_fault_free_rows(self):
        graph = random_graph(40, 120, seed=3)
        query = "SELECT COUNT(*) FROM MATCH (a)-/:LINK+/->(b)"
        config = EngineConfig(num_machines=4, sanitize=True)
        session = Session(graph, config)
        baseline = session.execute(query).rows
        plan = FaultPlan(seed=9, corrupt_prob=0.2)
        result = session.execute(query, config=config.with_(faults=plan))
        assert result.complete
        assert sorted(result.rows) == sorted(baseline)
        assert result.stats.transport["corrupt_dropped"] > 0


# ----------------------------------------------------------------------
# FaultPlan (de)serialization: strict, per-entry errors, round-trips
# ----------------------------------------------------------------------
class TestPlanSerialization:
    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown keys.*'drop_prb'"):
            FaultPlan.from_json('{"seed": 1, "drop_prb": 0.5}')

    def test_bad_entry_error_names_the_entry(self):
        data = {
            "seed": 1,
            "crashes": [
                {"machine": 1, "round": 4},
                {"machine": 2, "round": -3},
            ],
        }
        with pytest.raises(ConfigError, match=r"crashes\[1\]"):
            FaultPlan.from_dict(data)

    def test_unknown_entry_key_names_the_entry(self):
        data = {"seed": 1, "stalls": [{"machine": 0, "start": 2}]}
        with pytest.raises(ConfigError, match=r"stalls\[0\].*'start'"):
            FaultPlan.from_dict(data)

    def test_bad_partition_heal_round_names_the_entry(self):
        data = {
            "seed": 1,
            "partitions": [
                {
                    "start_round": 4,
                    "heal_round": 2,
                    "mode": "symmetric",
                    "groups": [[0], [1, 2, 3]],
                }
            ],
        }
        with pytest.raises(ConfigError, match=r"partitions\[0\].*heal_round"):
            FaultPlan.from_dict(data)

    def test_unknown_partition_mode_rejected(self):
        with pytest.raises(ConfigError, match=r"partitions\[0\].*mode"):
            FaultPlan(
                seed=1,
                partitions=(
                    NetworkPartition(start_round=2, mode="diagonal"),
                ),
            )

    def test_json_round_trip_property(self):
        """Hand-rolled property test (hypothesis isn't vendored): ~80
        random plans, including partitions and corruption, must survive
        to_json -> from_json bit-identically."""
        rng = random.Random(0xFA17)
        modes = ("symmetric", "asymmetric", "partial")
        for trial in range(80):
            stalls = tuple(
                MachineStall(
                    machine=rng.randrange(4),
                    start_round=rng.randint(1, 50),
                    duration=rng.randint(1, 20),
                )
                for _ in range(rng.randrange(3))
            )
            crashes = tuple(
                MachineCrash(
                    machine=rng.randrange(4),
                    round=(r := rng.randint(1, 50)),
                    recover_round=(
                        None if rng.random() < 0.5 else r + rng.randint(1, 30)
                    ),
                )
                for _ in range(rng.randrange(3))
            )
            partitions = []
            for _ in range(rng.randrange(3)):
                mode = rng.choice(modes)
                start = rng.randint(1, 40)
                heal = None if rng.random() < 0.4 else start + rng.randint(1, 40)
                if mode == "partial":
                    links = tuple(
                        (rng.randrange(4), rng.randrange(3))
                        for _ in range(rng.randint(1, 3))
                    )
                    partitions.append(
                        NetworkPartition(
                            start_round=start, heal_round=heal, mode=mode,
                            links=links,
                        )
                    )
                else:
                    machines = list(range(4))
                    rng.shuffle(machines)
                    cut = rng.randint(1, 3)
                    partitions.append(
                        NetworkPartition(
                            start_round=start, heal_round=heal, mode=mode,
                            groups=(
                                tuple(machines[:cut]), tuple(machines[cut:])
                            ),
                        )
                    )
            plan = FaultPlan(
                seed=rng.randrange(10_000),
                drop_prob=round(rng.random() * 0.3, 3),
                dup_prob=round(rng.random() * 0.3, 3),
                delay_prob=round(rng.random() * 0.3, 3),
                max_delay_rounds=rng.randint(1, 6),
                reorder_prob=round(rng.random() * 0.3, 3),
                reorder_window=rng.randint(1, 4),
                corrupt_prob=round(rng.random() * 0.2, 3),
                kinds=tuple(
                    sorted(
                        set(
                            rng.sample(
                                ("batch", "done", "status", "ack", "probe"),
                                rng.randint(1, 5),
                            )
                        )
                    )
                ),
                stalls=stalls,
                crashes=crashes,
                partitions=tuple(partitions),
            )
            restored = FaultPlan.from_json(plan.to_json())
            assert restored == plan, f"trial {trial} did not round-trip"
            # And the JSON itself is stable (canonical dict shape).
            assert json.loads(plan.to_json()) == json.loads(
                restored.to_json()
            )


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------
class TestConfigPlumbing:
    def test_membership_auto_enables_with_faults(self):
        plan = FaultPlan(seed=1)
        assert EngineConfig(faults=plan).membership_enabled
        assert not EngineConfig().membership_enabled
        assert not EngineConfig(faults=plan, membership=False).membership_enabled
        assert EngineConfig(membership=True).membership_enabled

    def test_suspect_window_must_cover_the_network_delay(self):
        plan = FaultPlan(seed=1)
        with pytest.raises(ConfigError, match="suspect_after"):
            EngineConfig(faults=plan, net_delay_rounds=8)
        # Fault-free (no detector) and membership=False runs are exempt.
        EngineConfig(net_delay_rounds=8)
        EngineConfig(faults=plan, net_delay_rounds=8, membership=False)
        EngineConfig(faults=plan, net_delay_rounds=8, suspect_after=10)

    def test_detection_group_kwarg_expands(self):
        from repro import MembershipConfig

        config = EngineConfig(
            detection=MembershipConfig(suspect_after=9, confirm_after=33)
        )
        assert config.suspect_after == 9
        assert config.confirm_after == 33
        assert config.membership_config.confirm_after == 33


# ----------------------------------------------------------------------
# The oracle ban, enforced
# ----------------------------------------------------------------------
ORACLE_ATTRS = {"permanent_down", "permanent_machines", "transient_down"}


class TestOracleBan:
    def test_no_production_code_reads_the_injector_oracle(self):
        """AST scan: outside repro.faults itself, no attribute access to
        the injector's ground-truth oracle surface.  Docstrings and
        comments are naturally exempt (they aren't Attribute nodes)."""
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            if "faults" in path.parts:
                continue
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr in ORACLE_ATTRS
                ):
                    offenders.append(
                        f"{path.relative_to(SRC)}:{node.lineno} ({node.attr})"
                    )
        assert not offenders, (
            "oracle state read outside repro.faults: " + ", ".join(offenders)
        )


# ----------------------------------------------------------------------
# End-to-end: detected failover / partial results / quorum loss
# ----------------------------------------------------------------------
class TestEndToEnd:
    QUERY = "SELECT COUNT(*) FROM MATCH (a)-/:LINK+/->(b)"

    def test_solo_failover_is_detection_driven(self):
        graph = random_graph(40, 120, seed=3)
        config = EngineConfig(
            num_machines=4, sanitize=True, recovery=True, stall_limit=500
        )
        session = Session(graph, config)
        baseline = session.execute(self.QUERY).rows
        plan = FaultPlan(seed=3, crashes=(MachineCrash(machine=2, round=6),))
        result = session.execute(self.QUERY, config=config.with_(faults=plan))
        assert result.complete
        assert sorted(result.rows) == sorted(baseline)
        membership = result.stats.membership
        assert membership["confirmations"] >= 1
        assert membership["fenced"] == [2]
        # Failover waited for the detector: at least the full window.
        assert min(membership["detection_latencies"]) > WINDOW

    def test_concurrent_retx_exhaustion_against_confirmed_down_peer(self):
        """ARQ abandonment on the shared cluster: without recovery, a
        permanently dead machine is confirmed by the shared detector and
        each query's channel then abandons its frames after
        MAX_RETX_ATTEMPTS — never before confirmation."""
        graph = random_graph(40, 120, seed=3)
        config = EngineConfig(
            num_machines=4,
            max_concurrent_queries=4,
            stall_limit=500,
        )
        plan = FaultPlan(seed=3, crashes=(MachineCrash(machine=2, round=6),))
        session = connect(graph, config.with_(faults=plan))
        handles = [session.submit(self.QUERY) for _ in range(2)]
        session.drain()
        exhausted = 0
        for handle in handles:
            result = handle.result()
            assert result.complete is False
            assert 2 in result.stats.down_machines
            exhausted += result.stats.transport["retx_exhausted"]
            assert result.stats.membership["confirmations"] >= 1
        assert exhausted > 0
