"""Tests for NetworkX interop, including cross-checks against NetworkX
reachability algorithms."""

import networkx as nx
import pytest

from repro import EngineConfig, GraphBuilder, RPQdEngine
from repro.graph import from_networkx, to_networkx
from repro.graph.generators import random_graph


class TestExport:
    @pytest.fixture
    def graph(self):
        b = GraphBuilder()
        a = b.add_vertex("Person", name="Ann")
        p = b.add_vertex("Post", extra_labels=("Message",))
        b.add_edge(a, p, "LIKES", weight=2)
        b.add_edge(a, p, "LIKES")  # parallel edge
        b.add_edge(a, a, "SELF")  # self loop
        return b.build()

    def test_preserves_topology(self, graph):
        g = to_networkx(graph)
        assert g.number_of_nodes() == 2
        assert g.number_of_edges() == 3

    def test_preserves_attributes(self, graph):
        g = to_networkx(graph)
        assert g.nodes[0]["label"] == "Person"
        assert g.nodes[0]["name"] == "Ann"
        assert g.nodes[1]["labels"] == ["Message"]
        weights = [d.get("weight") for _u, _v, d in g.edges(data=True)]
        assert 2 in weights


class TestImport:
    def test_round_trip(self):
        original = random_graph(15, 40, seed=6)
        back, id_map = from_networkx(to_networkx(original))
        assert back.num_vertices == original.num_vertices
        assert back.num_edges == original.num_edges
        # ids preserved (nodes were dense ints exported in order)
        assert all(id_map[v] == v for v in range(15))

    def test_import_plain_digraph(self):
        g = nx.DiGraph()
        g.add_edge("a", "b", label="KNOWS")
        g.add_edge("b", "c")
        graph, id_map = from_networkx(g)
        assert graph.num_vertices == 3
        assert graph.edge_label_name(0) in ("KNOWS", "EDGE")
        knows = graph.edge_labels.id_of("KNOWS")
        assert knows is not None

    def test_import_then_query(self):
        g = nx.gnp_random_graph(20, 0.15, seed=3, directed=True)
        graph, id_map = from_networkx(g, default_edge_label="E")
        engine = RPQdEngine(graph, EngineConfig(num_machines=2))
        got = engine.execute("SELECT COUNT(*) FROM MATCH (a)-/:E+/->(b)").scalar()
        # descendants() excludes the source; add self-reach for nodes on
        # cycles (walk semantics count the (n, n) pair then).
        expected = sum(len(nx.descendants(g, n)) for n in g.nodes)
        for n in g.nodes:
            if any(s == n or n in nx.descendants(g, s) for s in g.successors(n)):
                expected += 1
        assert got == expected

    def test_self_reach_via_cycles_matches_networkx(self):
        g = nx.DiGraph([(0, 1), (1, 0), (1, 2)])
        graph, _ = from_networkx(g, default_edge_label="E")
        engine = RPQdEngine(graph, EngineConfig(num_machines=1))
        got = engine.execute("SELECT COUNT(*) FROM MATCH (a)-/:E+/->(b)").scalar()
        # descendants() excludes the node itself even on cycles; add those.
        expected = 0
        for n in g.nodes:
            desc = nx.descendants(g, n)
            expected += len(desc)
            if any(n in nx.descendants(g, m) or m == n for m in g.successors(n)):
                expected += 0  # placeholder for readability
        # Compute self-reach explicitly: n reaches n iff n lies on a cycle.
        for n in g.nodes:
            if any(n in nx.descendants(g, s) or s == n for s in g.successors(n)):
                expected += 1
        assert got == expected
