"""Tests for the schedule race detector (repro.analysis.races).

The oracle: RPQ semantics are run-based, so the result set must be
invariant under any scheduler interleaving.  The sweep re-runs tier-1
style workloads under seeded permutations of the machine service order
and per-machine worker order and compares canonical result rows.
"""

import pytest

from repro import EngineConfig, RPQdEngine
from repro.analysis.races import RaceReport, run_schedule_sweep
from repro.errors import ConfigError
from repro.graph.generators import random_graph

CONFIG = EngineConfig(num_machines=4, buffers_per_machine=2048)


@pytest.fixture(scope="module")
def graph():
    return random_graph(60, 180, seed=11, edge_label="E")


class TestScheduleSeedConfig:
    def test_defaults_off(self):
        assert EngineConfig().schedule_seed is None

    def test_accepts_non_negative(self):
        assert EngineConfig(schedule_seed=7).schedule_seed == 7

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            EngineConfig(schedule_seed=-1)

    def test_fingerprint_absent_without_seed(self, graph):
        result = RPQdEngine(graph, CONFIG).execute(
            "SELECT COUNT(*) FROM MATCH (a)-[:E]->(b)"
        )
        assert result.stats.schedule_fingerprint is None


class TestSeededScheduling:
    QUERY = "SELECT COUNT(*) FROM MATCH (a)-/:E{1,3}/->(b)"

    def test_same_seed_is_deterministic(self, graph):
        engine = RPQdEngine(graph, CONFIG)
        runs = [
            engine.execute(self.QUERY, config=CONFIG.with_(schedule_seed=3))
            for _ in range(2)
        ]
        fingerprints = [r.stats.schedule_fingerprint for r in runs]
        assert fingerprints[0] is not None
        assert fingerprints[0] == fingerprints[1]
        assert runs[0].scalar() == runs[1].scalar()

    def test_different_seeds_differ(self, graph):
        engine = RPQdEngine(graph, CONFIG)
        fingerprints = {
            engine.execute(
                self.QUERY, config=CONFIG.with_(schedule_seed=seed)
            ).stats.schedule_fingerprint
            for seed in range(4)
        }
        assert len(fingerprints) == 4

    def test_seeded_result_matches_unseeded(self, graph):
        engine = RPQdEngine(graph, CONFIG)
        baseline = engine.execute(self.QUERY).scalar()
        perturbed = engine.execute(
            self.QUERY, config=CONFIG.with_(schedule_seed=99)
        ).scalar()
        assert baseline == perturbed


class TestSweep:
    def test_sweep_meets_acceptance_bar(self, graph):
        """>= 20 distinct interleavings, result sets all identical."""
        reports = run_schedule_sweep(
            graph,
            ["SELECT a, b FROM MATCH (a)-/:E{1,2}/->(b)"],
            num_schedules=20,
            config=CONFIG,
        )
        assert len(reports) == 1
        report = reports[0]
        assert report.ok, report.summary()
        assert report.mismatches == []
        assert report.distinct_interleavings >= 20
        assert len(report.seeds) == 20
        assert "ok" in report.summary()

    def test_sweep_runs_multiple_queries(self, graph):
        reports = run_schedule_sweep(
            graph,
            [
                "SELECT COUNT(*) FROM MATCH (a)-[:E]->(b)",
                "SELECT COUNT(*) FROM MATCH (a)-/:E+/->(b)",
            ],
            num_schedules=3,
            config=CONFIG,
        )
        assert [r.ok for r in reports] == [True, True]
        for report in reports:
            assert report.query in report.summary()

    def test_mismatch_detection_logic(self):
        """A divergent run is reported, independent of the engine."""
        report = RaceReport(
            query="q",
            baseline_rows=((1,),),
            seeds=[0, 1],
            fingerprints=[101, 202],
            mismatches=[(1, ((1,), (2,)))],
        )
        assert not report.ok
        assert "MISMATCH" in report.summary().upper() or "1 mismatch" in report.summary()
