"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def graph_file(tmp_path, capsys):
    path = tmp_path / "g.jsonl"
    rc = main(["generate", str(path), "--scale", "xs", "--seed", "3"])
    assert rc == 0
    capsys.readouterr()
    return path


class TestGenerate:
    def test_generate_writes_graph_and_meta(self, tmp_path, capsys):
        path = tmp_path / "g.jsonl"
        assert main(["generate", str(path), "--scale", "xs"]) == 0
        meta = json.loads(capsys.readouterr().out)
        assert meta["persons"] == 120
        assert path.exists()

    def test_generate_is_deterministic(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        main(["generate", str(a), "--scale", "xs", "--seed", "5"])
        main(["generate", str(b), "--scale", "xs", "--seed", "5"])
        assert a.read_text() == b.read_text()


class TestQuery:
    def test_query_rpqd(self, graph_file, capsys):
        rc = main(
            [
                "query",
                str(graph_file),
                "SELECT COUNT(*) FROM MATCH (p:Person)",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out[-1] == "120"

    @pytest.mark.parametrize("engine", ["rpqd", "bft", "recursive"])
    def test_all_engines_available(self, graph_file, capsys, engine):
        rc = main(
            [
                "query",
                str(graph_file),
                "SELECT COUNT(*) FROM MATCH (a:Person)-[:KNOWS]->(b:Person)",
                "--engine",
                engine,
            ]
        )
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert int(lines[-1]) > 0

    def test_stats_flag(self, graph_file, capsys):
        rc = main(
            [
                "query",
                str(graph_file),
                "SELECT COUNT(*) FROM MATCH (p:Person)",
                "--stats",
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "virtual latency" in err

    def test_null_rendering(self, graph_file, capsys):
        rc = main(
            [
                "query",
                str(graph_file),
                "SELECT SUM(p.age) FROM MATCH (p:Robot)",
            ]
        )
        assert rc == 0
        assert "NULL" in capsys.readouterr().out

    def test_csv_format(self, graph_file, capsys):
        rc = main(
            [
                "query",
                str(graph_file),
                "SELECT COUNT(*) FROM MATCH (p:Person)",
                "--format",
                "csv",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out[0] == "COUNT(*)"
        assert out[1] == "120"

    def test_json_format(self, graph_file, capsys):
        import json

        rc = main(
            [
                "query",
                str(graph_file),
                "SELECT COUNT(*) FROM MATCH (p:Person)",
                "--format",
                "json",
            ]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data == [{"COUNT(*)": 120}]

    def test_no_index_flag(self, graph_file, capsys):
        rc = main(
            [
                "query",
                str(graph_file),
                "SELECT COUNT(*) FROM MATCH (p:Post)<-/:REPLY_OF+/-(c:Comment)",
                "--no-index",
            ]
        )
        assert rc == 0


class TestExplain:
    def test_explain_prints_plan(self, graph_file, capsys):
        rc = main(
            [
                "explain",
                str(graph_file),
                "SELECT COUNT(*) FROM MATCH (a:Person)-/:KNOWS{1,2}/-(b:Person)",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "rpq_control" in out
        assert "slots:" in out


class TestWorkload:
    def test_workload_table(self, capsys):
        rc = main(["workload", "--scale", "xs", "--machines", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Q03*" in out and "Q10R" in out
        assert "rpqd" in out and "recursive" in out
