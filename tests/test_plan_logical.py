"""Tests for pattern-graph construction and logical-plan ordering heuristics."""

import pytest

from repro.errors import PlanningError
from repro.pgql import parse
from repro.plan import build_pattern_graph
from repro.plan.logical import (
    EdgeMatchOp,
    InspectOp,
    NeighborMatchOp,
    OutputOp,
    RpqMatchOp,
    VertexMatchOp,
)
from repro.plan.planner import Planner, extract_single_match
from repro.pgql import parse_expression


def plan_ops(text):
    return Planner(parse(text)).plan().ops


class TestPatternGraph:
    def test_shared_variables_merge(self):
        q = parse("SELECT COUNT(*) FROM MATCH (a)->(b), MATCH (b)->(c)")
        pg = build_pattern_graph(q)
        assert set(pg.vertices) == {"a", "b", "c"}
        assert len(pg.connectors) == 2

    def test_anonymous_vertices_are_distinct(self):
        q = parse("SELECT COUNT(*) FROM MATCH (a)->()->()")
        pg = build_pattern_graph(q)
        assert len(pg.vertices) == 3

    def test_labels_accumulate_as_groups(self):
        q = parse("SELECT COUNT(*) FROM MATCH (a:Person)->(b), MATCH (a:Message)->(c)")
        pg = build_pattern_graph(q)
        assert pg.vertices["a"].label_groups == (("Person",), ("Message",))

    def test_disconnected_pattern_rejected(self):
        q = parse("SELECT COUNT(*) FROM MATCH (a)->(b), MATCH (c)->(d)")
        with pytest.raises(PlanningError):
            build_pattern_graph(q)

    def test_cartesian_vertices_rejected(self):
        q = parse("SELECT COUNT(*) FROM MATCH (a), MATCH (b)")
        with pytest.raises(PlanningError):
            build_pattern_graph(q)

    def test_single_vertex_allowed(self):
        q = parse("SELECT COUNT(*) FROM MATCH (a:Person)")
        pg = build_pattern_graph(q)
        assert set(pg.vertices) == {"a"}


class TestSingleMatchExtraction:
    def test_id_equals_literal(self):
        assert extract_single_match(parse_expression("id(v) = 42")) == ("v", 42)

    def test_literal_equals_id(self):
        assert extract_single_match(parse_expression("42 = id(v)")) == ("v", 42)

    def test_non_single_match(self):
        assert extract_single_match(parse_expression("id(v) < 42")) is None
        assert extract_single_match(parse_expression("v.x = 42")) is None


class TestOrderingHeuristics:
    def test_single_match_vertex_starts(self):
        # Heuristic (i): ID(b)=7 makes b the start even though a is first.
        ops = plan_ops("SELECT COUNT(*) FROM MATCH (a)->(b) WHERE id(b) = 7")
        assert isinstance(ops[0], VertexMatchOp) and ops[0].var == "b"
        # Traversal from b follows the edge in reverse.
        assert isinstance(ops[1], NeighborMatchOp) and ops[1].var == "a"

    def test_filtered_vertex_preferred(self):
        # Heuristic (ii): equality filter on c beats unfiltered a.
        ops = plan_ops(
            "SELECT COUNT(*) FROM MATCH (a)->(b)->(c) WHERE c.name = 'x'"
        )
        assert ops[0].var == "c"

    def test_cycle_closes_with_edge_match(self):
        # Heuristic (iii): triangle pattern uses one edge match.
        ops = plan_ops("SELECT COUNT(*) FROM MATCH (a)->(b)->(c)->(a)")
        kinds = [type(op).__name__ for op in ops]
        assert kinds.count("EdgeMatchOp") == 1
        assert kinds[-1] == "OutputOp"

    def test_rpq_runs_before_neighbor(self):
        # Heuristic (iv): from the start vertex, the RPQ segment is taken
        # before the plain neighbor edge.
        ops = plan_ops(
            "SELECT COUNT(*) FROM MATCH (a)-/:knows+/->(b), MATCH (a)-[:LIKES]->(c) "
            "WHERE id(a) = 1"
        )
        rpq_pos = next(i for i, op in enumerate(ops) if isinstance(op, RpqMatchOp))
        nbr_pos = next(
            i for i, op in enumerate(ops)
            if isinstance(op, NeighborMatchOp) and op.var == "c"
        )
        assert rpq_pos < nbr_pos

    def test_branching_pattern_gets_inspect(self):
        # (a)->(b)->(c) plus (b)->(d): after reaching c we must return to b.
        ops = plan_ops(
            "SELECT COUNT(*) FROM MATCH (a)->(b)->(c), MATCH (b)->(d) WHERE id(a) = 0"
        )
        assert any(isinstance(op, InspectOp) and op.var == "b" for op in ops)

    def test_plan_ends_with_output(self):
        ops = plan_ops("SELECT COUNT(*) FROM MATCH (a)->(b)")
        assert isinstance(ops[-1], OutputOp)

    def test_all_connectors_covered(self):
        ops = plan_ops("SELECT COUNT(*) FROM MATCH (a)->(b)->(c), MATCH (b)->(d)")
        traversals = [
            op for op in ops if isinstance(op, (NeighborMatchOp, EdgeMatchOp, RpqMatchOp))
        ]
        assert len(traversals) == 3

    def test_describe_is_printable(self):
        plan = Planner(
            parse("SELECT COUNT(*) FROM MATCH (a)-/:p{1,3}/->(b) WHERE id(a)=0")
        ).plan()
        text = plan.describe()
        assert "Rpq" in text and "Output" in text


class TestMacroShadowing:
    def test_macro_var_shadowing_match_var_rejected(self):
        q = parse(
            "PATH p AS (a)-[:X]->(y) "
            "SELECT COUNT(*) FROM MATCH (a)-/:p+/->(b)"
        )
        with pytest.raises(PlanningError):
            Planner(q)
