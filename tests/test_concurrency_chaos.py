"""Chaos under concurrency: faults, ARQ, and recovery on the shared cluster.

The tentpole invariant: every admitted query's result set must be
bit-identical to its fault-free *solo* run, at concurrency >= 4, under
seeded fault plans injected at the shared ClusterNetwork — including
permanent machine crashes, which may roll back only the queries that
actually lost state (bounded blast radius).
"""

import pytest

from repro import EngineConfig, connect
from repro.errors import QueryCancelledError
from repro.faults import FaultPlan, MachineCrash, run_concurrent_chaos_sweep
from repro.graph.generators import random_graph

QUERIES = [
    "SELECT COUNT(*) FROM MATCH (a)-[:LINK]->(b)",
    "SELECT COUNT(*) FROM MATCH (a)-/:LINK+/->(b)",
    "SELECT COUNT(*) FROM MATCH (a)-/:LINK{1,3}/->(b)",
    "SELECT COUNT(*) FROM MATCH (a)-/:LINK{2,4}/->(b)",
]

CONFIG = EngineConfig(
    num_machines=4, buffers_per_machine=2048, sanitize=True,
    max_concurrent_queries=4,
)


def _graph(seed=11):
    return random_graph(50, 150, seed=seed)


def _rows(result):
    return sorted(tuple(row) for row in result.rows)


def _solo_baselines(graph, queries):
    solo = connect(graph, CONFIG.with_(reliable_transport=True))
    return [_rows(solo.execute(q)) for q in queries]


class TestConcurrentChaosInvariance:
    def test_drop_dup_reorder_bit_identical_at_concurrency_4(self):
        plans = [
            FaultPlan(
                seed=seed, drop_prob=0.05, dup_prob=0.05,
                reorder_prob=0.10, reorder_window=3,
            )
            for seed in (1, 2)
        ]
        report = run_concurrent_chaos_sweep(
            _graph(), QUERIES, plans, config=CONFIG, concurrency=4
        )
        assert report.ok, report.mismatches
        assert report.total_faults > 0  # the chaos actually fired
        for run in report.runs:
            assert run.identical
            assert all(q["complete"] for q in run.queries)

    def test_two_sequential_permanent_crashes(self):
        plan = FaultPlan(
            seed=9,
            crashes=(
                MachineCrash(machine=2, round=4),
                MachineCrash(machine=3, round=9),
            ),
        )
        report = run_concurrent_chaos_sweep(
            _graph(), QUERIES, [plan],
            config=CONFIG.with_(recovery=True), concurrency=4,
        )
        assert report.ok, report.mismatches
        run = report.runs[0]
        assert len(run.blast_radius) == 2
        assert [entry["dead"] for entry in run.blast_radius] == [[2], [3]]
        assert report.total_recoveries > 0

    def test_crash_racing_a_conclude(self):
        """A permanent crash landing right at a query's solo conclude round
        must still replay to the exact baseline for every co-resident."""
        graph = _graph()
        solo = connect(graph, CONFIG.with_(reliable_transport=True))
        clean = solo.execute(QUERIES[2])
        crash_round = max(1, int(clean.stats.virtual_time))
        plan = FaultPlan(
            seed=13, crashes=(MachineCrash(machine=1, round=crash_round),)
        )
        report = run_concurrent_chaos_sweep(
            graph, QUERIES, [plan],
            config=CONFIG.with_(recovery=True), concurrency=4,
        )
        assert report.ok, report.mismatches


class TestBlastRadiusIsolation:
    def test_crash_rolls_back_only_the_active_queries(self):
        """Nine queries through a 3-wide scheduler; machine 2 dies while the
        first three are active.  All three recover; the six admitted later
        run on the failed-over host map without ever rolling back."""
        graph = _graph()
        nine = (QUERIES[1:] * 3)[:9]
        baselines = _solo_baselines(graph, nine)
        plan = FaultPlan(seed=5, crashes=(MachineCrash(machine=2, round=4),))
        session = connect(
            graph,
            CONFIG.with_(
                max_concurrent_queries=3, recovery=True, faults=plan
            ),
        )
        handles = [session.submit(q) for q in nine]
        session.drain()
        first_ids = sorted(h.query_id for h in handles[:3])
        for handle, baseline in zip(handles, baselines):
            result = handle.result()
            assert result.complete
            assert _rows(result) == baseline
        recoveries = [
            (h.result().stats.recovery or {}).get("recoveries", 0)
            for h in handles
        ]
        assert all(n >= 1 for n in recoveries[:3]), recoveries
        assert all(n == 0 for n in recoveries[3:]), recoveries
        blast = session.cluster_blast_radius
        assert len(blast) == 1
        assert blast[0]["dead"] == [2]
        assert sorted(blast[0]["rolled_back"]) == first_ids

    def test_cancel_mid_chaos_releases_without_perturbing_others(self):
        graph = _graph()
        baselines = _solo_baselines(graph, QUERIES)
        plan = FaultPlan(
            seed=5, drop_prob=0.05, dup_prob=0.05,
            crashes=(MachineCrash(machine=1, round=6),),
        )
        session = connect(graph, CONFIG.with_(recovery=True, faults=plan))
        handles = [session.submit(q) for q in QUERIES]
        # A few rounds so every query holds live ARQ + checkpoint state.
        for _ in range(3):
            session._scheduler.step()
        victim = handles[1]
        task = victim._task
        assert task.recovery is not None
        assert len(task.recovery.store) > 0
        assert victim.cancel()
        assert len(task.recovery.store) == 0  # checkpoints released
        session.drain()
        with pytest.raises(QueryCancelledError):
            victim.result()
        for index, handle in enumerate(handles):
            if handle is victim:
                continue
            result = handle.result()
            assert result.complete
            assert _rows(result) == baselines[index]

    def test_deadline_expiry_mid_chaos_spares_the_others(self):
        graph = _graph()
        baselines = _solo_baselines(graph, QUERIES)
        plan = FaultPlan(seed=5, drop_prob=0.05, dup_prob=0.05)
        session = connect(graph, CONFIG.with_(recovery=True, faults=plan))
        doomed = session.submit(QUERIES[1], deadline=2)
        rest = [session.submit(q) for q in QUERIES]
        session.drain()
        assert doomed.result().timed_out
        assert len(doomed._task.recovery.store) == 0  # resources released
        for handle, baseline in zip(rest, baselines):
            result = handle.result()
            assert result.complete
            assert _rows(result) == baseline
